"""Per-stream sessions and the manager that demultiplexes onto them.

A **session** is one stream id's reconstruction state: a
:class:`~repro.stream.engine.StreamingReconstructor` wired to the shared
solver pool, a private :class:`~repro.obs.registry.MetricsRegistry`
(installed around every engine call so per-stream counters stay
per-stream even though calls run on changing worker threads), and the
serialized rows of every committed window so RESULTS can be answered
long after the windows were evicted from the engine.

The **manager** maps stream ids to sessions, enforces the
``max_sessions`` admission limit (counting *active* sessions — drained
ones keep answering queries but no longer occupy a slot), and tracks
which connections feed each stream so the last disconnect triggers
eviction: flush the engine, commit everything, release the solver lane,
keep the results queryable.

Everything here is synchronous and asyncio-free: the server calls in
from ``asyncio.to_thread`` workers (serialized per session by an
asyncio lock on its side), and unit tests drive sessions directly.
"""

from __future__ import annotations

import threading

from repro.core.pipeline import DomoConfig
from repro.obs.registry import MetricsRegistry, registry_scope
from repro.obs.spans import span
from repro.runtime.executor import WindowSolveSpec
from repro.serve.pool import SharedSolverPool
from repro.serve.protocol import committed_window_to_json
from repro.stream.engine import StreamingReconstructor

__all__ = ["SessionLimitError", "SessionManager", "StreamSession"]


class SessionLimitError(RuntimeError):
    """Admission control refused to create another session."""


class StreamSession:
    """One stream's engine, metrics scope, and committed-result log."""

    def __init__(
        self,
        stream_id: str,
        config: DomoConfig,
        lateness_ms: float,
        pool: SharedSolverPool,
    ) -> None:
        self.stream_id = stream_id
        self.registry = MetricsRegistry()
        self._pool = pool
        self._executor = pool.session(stream_id)
        self.engine = StreamingReconstructor(
            config, lateness_ms=lateness_ms, executor=self._executor
        )
        #: serialized RESULTS rows of every committed window, in commit
        #: (== solve-index) order; survives engine eviction and drain.
        self.results: list[dict] = []
        #: records accepted into the engine (ingest calls may batch).
        self.records_in = 0
        self.drained = False
        #: first engine failure (ingest or flush raising), if any; a
        #: failed session keeps its committed results queryable but
        #: accepts no further records.
        self.failed: str | None = None
        #: connections currently feeding this stream.
        self._owners: set[int] = set()

    # -- engine calls (always under the session registry) ---------------

    def ingest(self, packets) -> None:
        """Feed one batch of records; collect any windows that committed."""
        packets = list(packets)
        with registry_scope(self.registry):
            with span("session"):
                self.engine.ingest(packets)
                committed = self.engine.poll()
        self.records_in += len(packets)
        self._absorb(committed)

    def flush(self) -> int:
        """Seal/solve/commit everything buffered; new committed count."""
        with registry_scope(self.registry):
            with span("session"):
                committed = self.engine.flush()
        self._absorb(committed)
        return len(committed)

    def drain(self) -> None:
        """Final flush + release of the solver lane (results kept).

        A broken engine (e.g. after a strict-validation rejection mid-
        ingest) must not wedge the drain: the failure is recorded and
        the session still ends up ``drained`` so eviction and shutdown
        complete; the pool sweeps any leftover lane residue at close.
        """
        if self.drained:
            return
        try:
            self.flush()
        except Exception as exc:  # noqa: BLE001 - record, keep draining
            self.mark_failed(f"{type(exc).__name__}: {exc}")
        self.engine.close()  # no-op on the injected executor, by design
        try:
            self._pool.release(self.stream_id)
        except RuntimeError:
            if self.failed is None:
                raise
        self.drained = True

    def mark_failed(self, reason: str) -> None:
        """Record the first engine failure (later ones keep the first)."""
        if self.failed is None:
            self.failed = reason

    def _absorb(self, committed) -> None:
        for cw in committed:
            self.results.append(committed_window_to_json(cw))

    # -- ownership (which connections feed this stream) ------------------

    def add_owner(self, connection_id: int) -> None:
        self._owners.add(connection_id)

    def remove_owner(self, connection_id: int) -> bool:
        """Detach a connection; True when this was the last owner."""
        self._owners.discard(connection_id)
        return not self._owners

    @property
    def num_owners(self) -> int:
        return len(self._owners)

    # -- queries ---------------------------------------------------------

    def results_since(self, since: int = -1) -> list[dict]:
        """Committed rows with ``solve_index > since`` (all by default)."""
        return [row for row in self.results if row["solve_index"] > since]

    def stats(self) -> dict:
        # Deliberately reads only scalar engine state (no
        # ``engine.stats()``): STATS runs on the event loop while the
        # session's pump thread may be mid-ingest, and scalar reads are
        # safe where iterating the engine's dicts would not be.
        return {
            "records_in": self.records_in,
            "windows_committed": len(self.results),
            "backlog": self.engine.backlog,
            "resident_packets": self.engine.resident_packets,
            "quarantined": self.engine.report.num_quarantined,
            "drained": self.drained,
            "failed": self.failed,
            "owners": self.num_owners,
        }


class SessionManager:
    """Stream-id -> session map with admission control and eviction."""

    def __init__(
        self,
        config: DomoConfig | None = None,
        lateness_ms: float = float("inf"),
        max_sessions: int = 64,
        pool: SharedSolverPool | None = None,
    ) -> None:
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {max_sessions}")
        self.config = config or DomoConfig()
        self.lateness_ms = lateness_ms
        self.max_sessions = max_sessions
        self.pool = pool or SharedSolverPool(
            WindowSolveSpec(
                fifo_mode=self.config.fifo_mode,
                estimator=self.config.estimator,
                sdr=self.config.sdr,
            ),
            parallel=self.config.parallel,
            max_workers=self.config.max_workers,
        )
        self._lock = threading.Lock()
        self._sessions: dict[str, StreamSession] = {}
        self.sessions_rejected = 0
        self.sessions_evicted = 0

    # -- lookup / admission ----------------------------------------------

    @property
    def active_sessions(self) -> int:
        return sum(1 for s in self._sessions.values() if not s.drained)

    def get(self, stream_id: str) -> StreamSession | None:
        return self._sessions.get(stream_id)

    def get_or_create(self, stream_id: str) -> StreamSession:
        """The stream's session, admitting a new one if allowed.

        Raises :class:`SessionLimitError` when ``max_sessions`` *active*
        sessions already exist — drained sessions stay queryable but do
        not hold an admission slot.
        """
        with self._lock:
            session = self._sessions.get(stream_id)
            if session is not None:
                return session
            if self.active_sessions >= self.max_sessions:
                self.sessions_rejected += 1
                raise SessionLimitError(
                    f"session limit reached ({self.max_sessions} active); "
                    f"stream {stream_id!r} refused"
                )
            session = StreamSession(
                stream_id, self.config, self.lateness_ms, self.pool
            )
            self._sessions[stream_id] = session
            return session

    # -- eviction ----------------------------------------------------------

    def disconnect(self, connection_id: int) -> list[StreamSession]:
        """Detach a closed connection everywhere; return sessions whose
        last feeder just left (the server drains them off-loop)."""
        orphaned = []
        with self._lock:
            for session in self._sessions.values():
                if session.drained:
                    continue
                had = connection_id in session._owners
                if had and session.remove_owner(connection_id):
                    orphaned.append(session)
        return orphaned

    def evict(self, session: StreamSession) -> None:
        """Drain one orphaned session (flush, release lane, keep results)."""
        if not session.drained:
            session.drain()
            self.sessions_evicted += 1

    def drain_all(self) -> int:
        """Flush every active session (shutdown path); windows committed."""
        committed = 0
        for session in list(self._sessions.values()):
            if not session.drained:
                before = len(session.results)
                session.drain()
                committed += len(session.results) - before
        return committed

    # -- aggregate views ---------------------------------------------------

    def merged_registry(self) -> MetricsRegistry:
        """All session registries + the pool registry, merged."""
        merged = MetricsRegistry()
        for session in self._sessions.values():
            merged.merge(session.registry.snapshot())
        merged.merge(self.pool.registry.snapshot())
        return merged

    def stats(self) -> dict:
        with self._lock:
            streams = {
                stream_id: session.stats()
                for stream_id, session in sorted(self._sessions.items())
            }
        return {
            "sessions": len(streams),
            "active_sessions": self.active_sessions,
            "max_sessions": self.max_sessions,
            "sessions_rejected": self.sessions_rejected,
            "sessions_evicted": self.sessions_evicted,
            "pool": self.pool.stats(),
            "streams": streams,
        }

    def close(self) -> None:
        self.drain_all()
        self.pool.close()
