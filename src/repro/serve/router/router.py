"""The sharded serve tier's front door.

One :class:`RouterServer` owns the client-facing listeners and fans the
line protocol out over N shard processes, each a full
:class:`~repro.serve.server.ReconstructionServer` with its own WAL
directory, reached over an internal unix socket::

    clients ──▶ RouterServer ──ring──▶ shard-0  (ReconstructionServer,
                │   │                  wal-dir 0, supervised child)
                │   └────────────────▶ shard-1  (…)
                └────────────────────▶ shard-2  (…)

* **Placement** is the consistent-hash ring (:mod:`.ring`): each
  ``stream_id`` lives on exactly one shard, so per-stream ordering and
  the engine's bit-exactness guarantees carry over unchanged — the
  router adds distribution, not reordering. Migration pins exceptions
  in an overrides table (persisted to ``routing.json`` when the router
  has a state dir).
* **Forwarding** re-encodes each accepted record with the canonical
  wire encoder and appends it to a per-stream resend buffer before
  writing it to the shard, so the router always knows the exact tail a
  crashed shard may not have made durable.
* **Failover**: a dead backend connection is re-dialed under a total
  deadline (the supervisor restarts the shard underneath), then every
  buffered stream is resynced — ask the shard's ``records_durable``,
  trim the buffer to it, resend the rest. Nothing acknowledged is lost,
  nothing durable is sent twice.
* **Migration** (``MIGRATE <stream> [shard]``, and ``DRAIN <shard>``
  for every stream at once): EXPORT on the source quiesces the stream
  behind its queue barrier and returns the durable state document;
  IMPORT on the target rebuilds it bit-exactly and anchors a fresh WAL.
  Both backend locks are held for the whole handoff and the routing
  maps flip before they are released, so no record, RESULTS, or FLUSH
  can slip into the gap and resurrect the stream on the wrong shard.
  EXPORT retires the stream on the source, so on any IMPORT failure —
  an error reply *or* a dead target past the failover deadline — the
  document is IMPORTed back onto the source; if even that fails it is
  parked in an orphans map that a retried MIGRATE drains. The exported
  state is never lost to an exception path.
* **RESULTS** replies add the vector cursor (``"cursor": "v@…"``)
  tracking the highest solve index seen per shard; clients hand the
  token back as ``--since`` and never lose or re-read a window across
  failover or migration (see :mod:`repro.serve.protocol`).
* **Shutdown** drains clients, sends QUIT to every backend, SIGTERMs
  the supervised shards (each drains and writes its own run report),
  then merges the shard reports into this process's registry so the
  router's ``domo.run_report/1`` covers the whole tier.
"""

from __future__ import annotations

import asyncio
import base64
import json
import os
import threading

from repro.obs.registry import isolated_registry
from repro.obs.report import (
    RunReport,
    build_run_report,
    report_registry_snapshot,
    write_run_report,
)
from repro.obs.spans import span
from repro.serve.client import ServeClient, connect as serve_connect
from repro.serve.core import LineProtocolServer
from repro.serve.durability.supervisor import CrashLoopError, Supervisor
from repro.serve.protocol import (
    CommandLine,
    ProtocolError,
    RecordLine,
    cursor_since,
    encode_record,
    encode_vector_cursor,
    error_response,
    merge_vector_cursor,
    parse_since,
)
from repro.serve.router.ring import HashRing

__all__ = ["RouterServer", "ShardSpec"]

ROUTING_SCHEMA = "domo.routing/1"

#: errors that mean "the shard connection is gone" (mirrors client.py).
_RESET_ERRORS = (ConnectionError, BrokenPipeError, TimeoutError, OSError)


class ShardSpec:
    """One shard of the tier: a name, its socket, and how to run it.

    Args:
        name: stable shard name — the ring hashes it, the vector cursor
            carries it, and the WAL directory is keyed by it, so it must
            survive router restarts.
        socket_path: the shard's internal unix socket.
        argv: full child command line (``domo serve --socket … --wal-dir
            …``). When set, the router runs the shard under a
            :class:`Supervisor` (crash → restart with backoff); when
            ``None`` the shard is externally managed and the router only
            connects (in-process test servers, pre-provisioned fleets).
        metrics_path: where the shard writes its shutdown run report;
            merged into the router's report at drain time.
    """

    def __init__(
        self,
        name: str,
        socket_path: str,
        *,
        argv: list[str] | None = None,
        metrics_path: str | None = None,
    ) -> None:
        if not name:
            raise ValueError("shard name must be nonempty")
        self.name = name
        self.socket_path = socket_path
        self.argv = list(argv) if argv else None
        self.metrics_path = metrics_path


class _StreamBuffer:
    """The unacknowledged tail of one stream's forwarded records.

    ``base`` counts records known durable on the owning shard (trimmed
    away); ``lines`` holds the raw wire lines past that point. The
    invariant ``base + len(lines) == records ever forwarded`` is what
    lets a failover resume from any ``records_durable`` the restarted
    shard reports.
    """

    __slots__ = ("base", "lines")

    def __init__(self, base: int = 0) -> None:
        self.base = base
        self.lines: list[bytes] = []

    @property
    def total(self) -> int:
        return self.base + len(self.lines)

    def trim(self, durable: int) -> None:
        if durable > self.base:
            del self.lines[: durable - self.base]
            self.base = durable


class ShardBackend:
    """One shard's connection, resend buffers, and failover policy.

    Every method suffixed ``_sync`` blocks (socket I/O) and must run
    via ``asyncio.to_thread`` while holding :attr:`lock` — the lock is
    what serializes forwards, commands, and migrations per shard, and
    thereby preserves per-stream record order end to end.
    """

    def __init__(
        self,
        spec: ShardSpec,
        *,
        dial_timeout_s: float = 600.0,
        connect_retries: int = 8,
        connect_backoff_s: float = 0.1,
        failover_retries: int = 10,
        failover_backoff_s: float = 0.2,
        failover_deadline_s: float = 15.0,
    ) -> None:
        self.spec = spec
        self.lock = asyncio.Lock()
        self.client: ServeClient | None = None
        #: guards the *dict* (insert/pop/iterate) — buffer contents are
        #: only touched under :attr:`lock`, but stats() sums the dict
        #: from the event loop while to_thread workers mutate it.
        self.buffers_lock = threading.Lock()
        self.buffers: dict[str, _StreamBuffer] = {}
        self.dial_timeout_s = dial_timeout_s
        self.connect_retries = connect_retries
        self.connect_backoff_s = connect_backoff_s
        self.failover_retries = failover_retries
        self.failover_backoff_s = failover_backoff_s
        self.failover_deadline_s = failover_deadline_s
        self.records_forwarded = 0
        self.records_resent = 0
        self.failovers = 0

    # -- connection ----------------------------------------------------

    def connect_sync(self) -> None:
        """Dial the shard, retrying while it boots/recovers."""
        if self.client is None:
            self.client = serve_connect(
                socket_path=self.spec.socket_path,
                timeout=self.dial_timeout_s,
                connect_retries=self.connect_retries,
                retry_backoff_s=self.connect_backoff_s,
            )
            return
        if self.client.closed:
            # The previous connection died (or a terminal failover
            # closed it) with resend buffers possibly outstanding; a
            # plain re-dial would skip the resync, so go through the
            # failover path, which trims and resends every buffer.
            self._failover_sync()

    def close_sync(self) -> None:
        if self.client is not None:
            self.client.quit()
            self.client.close()

    def _failover_sync(self) -> None:
        """Reconnect under the total deadline, then resync every stream.

        The supervisor is restarting the shard underneath; once it is
        back, each buffered stream is trimmed to the shard's recovered
        ``records_durable`` and the unacknowledged tail is resent — the
        same contract ``send_packets_resumable`` gives a direct client,
        applied to every stream this shard owns at once.
        """
        assert self.client is not None
        self.client.reconnect(
            retries=self.failover_retries,
            backoff_s=self.failover_backoff_s,
            deadline_s=self.failover_deadline_s,
        )
        self.failovers += 1
        for stream, buffer in sorted(self.buffers.items()):
            durable = self.client.durable_offset(stream)
            buffer.trim(durable)
            for line in buffer.lines:
                self.client.send_raw(line)
            self.records_resent += len(buffer.lines)

    # -- operations (all under self.lock, via to_thread) ---------------

    def _buffer_for(self, stream: str) -> _StreamBuffer:
        buffer = self.buffers.get(stream)
        if buffer is not None:
            return buffer
        # First sight of this stream in this router's lifetime. The
        # shard may already hold durable records for it (WAL recovery
        # after a router restart), and trim() is driven by the shard's
        # *global* record count — anchor ``base`` there, or the first
        # trim would eat lines forwarded since the restart and a later
        # failover would silently lose them.
        try:
            base = self.client.durable_offset(stream)
        except _RESET_ERRORS:
            self._failover_sync()
            base = self.client.durable_offset(stream)
        buffer = _StreamBuffer(base)
        with self.buffers_lock:
            self.buffers[stream] = buffer
        return buffer

    def forward_sync(self, stream: str, data: bytes) -> None:
        """Buffer + forward one record line; failover covers the send."""
        self.connect_sync()
        buffer = self._buffer_for(stream)
        # Buffer before send: if the send dies halfway, the resync path
        # resends this line from the buffer rather than losing it.
        buffer.lines.append(data)
        try:
            self.client.send_raw(data)
        except _RESET_ERRORS:
            try:
                self._failover_sync()  # resends the tail, incl. `data`
            except Exception:
                # Terminal: the client is about to be told the record
                # was rejected, so it must not linger in the buffer — a
                # later successful failover would replay it on top of
                # the client's own resend, double-ingesting the record.
                if buffer.lines and buffer.lines[-1] is data:
                    buffer.lines.pop()
                raise
        self.records_forwarded += 1

    def command_sync(self, line: str) -> dict:
        """Round-trip one command, with one failover retry."""
        self.connect_sync()
        try:
            return self.client.command(line)
        except _RESET_ERRORS:
            self._failover_sync()
            return self.client.command(line)

    def results_sync(self, stream: str, since: int) -> dict:
        """RESULTS round-trip; a good reply also trims the buffer —
        ``records_durable`` is the shard acknowledging the prefix."""
        reply = self.command_sync(f"RESULTS {stream} --since {since}")
        if reply.get("ok"):
            buffer = self.buffers.get(stream)
            if buffer is not None:
                buffer.trim(int(reply.get("records_durable", 0)))
        return reply

    def pop_buffer(self, stream: str) -> _StreamBuffer | None:
        with self.buffers_lock:
            return self.buffers.pop(stream, None)

    def adopt_sync(
        self, stream: str, buffer: _StreamBuffer, durable: int
    ) -> None:
        """Take over a migrated stream's resend buffer, push its tail.

        The buffer is installed *before* the resend, so a connection
        loss mid-push is recoverable: the tail stays buffered and the
        failover path resyncs it against ``records_durable``.
        """
        buffer.trim(durable)
        with self.buffers_lock:
            self.buffers[stream] = buffer
        if not buffer.lines:
            return
        try:
            for line in buffer.lines:
                self.client.send_raw(line)
            self.records_resent += len(buffer.lines)
        except _RESET_ERRORS:
            self._failover_sync()  # resyncs every buffer, incl. this one

    def buffer_stats(self) -> tuple[int, int]:
        """(streams, buffered lines) — safe from any thread."""
        with self.buffers_lock:
            buffers = list(self.buffers.values())
        return len(buffers), sum(len(b.lines) for b in buffers)

    def buffered_lines(self) -> int:
        return self.buffer_stats()[1]


class RouterServer(LineProtocolServer):
    """Consistent-hash front door over N reconstruction shards.

    Args:
        shards: the tier's :class:`ShardSpec` topology.
        socket_path/host/port: client-facing listeners (as for
            :class:`~repro.serve.server.ReconstructionServer`).
        replicas: virtual points per shard on the ring.
        state_dir: where ``routing.json`` (migration overrides) lives;
            ``None`` keeps overrides in memory only.
        failover_deadline_s: total ceiling on one backend failover
            (dial retries + backoff), bounding the client-visible stall.
        supervisor_max_restarts / supervisor_backoff_s: crash-loop
            breaker settings for spawned shards.
    """

    def __init__(
        self,
        shards: list[ShardSpec],
        *,
        socket_path: str | None = None,
        host: str = "127.0.0.1",
        port: int | None = None,
        replicas: int = 64,
        state_dir: str | None = None,
        failover_deadline_s: float = 15.0,
        supervisor_max_restarts: int = 5,
        supervisor_backoff_s: float = 0.2,
        metrics_out: str | None = None,
        argv: list[str] | None = None,
        on_ready=None,
    ) -> None:
        super().__init__(
            socket_path=socket_path, host=host, port=port, on_ready=on_ready
        )
        if not shards:
            raise ValueError("router needs at least one shard")
        names = [spec.name for spec in shards]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate shard names in {names}")
        self.shards = list(shards)
        self.ring = HashRing(names, replicas=replicas)
        self.backends = {
            spec.name: ShardBackend(
                spec, failover_deadline_s=failover_deadline_s
            )
            for spec in shards
        }
        self.state_dir = state_dir
        self.metrics_out = metrics_out
        self.argv = list(argv or [])
        self.supervisor_max_restarts = supervisor_max_restarts
        self.supervisor_backoff_s = supervisor_backoff_s
        #: the shutdown RunReport, populated when :meth:`run` returns.
        self.report: RunReport | None = None
        self.migrations = 0

        #: migration pins: stream -> shard, overriding the ring.
        self._overrides: dict[str, str] = {}
        #: last-copy safety net: stream -> exported state blob that a
        #: failed migration could place on neither the target nor back
        #: on the source; a retried MIGRATE moves it from here.
        self._orphans: dict[str, str] = {}
        #: current placement of every stream the router has seen.
        self._streams: dict[str, str] = {}
        self._drained: set[str] = set()
        self._migration_lock: asyncio.Lock | None = None
        self._supervisors: dict[str, Supervisor] = {}
        self._supervisor_threads: dict[str, threading.Thread] = {}
        self._shard_errors: dict[str, str] = {}
        if state_dir is not None:
            self._load_routing()

    # ------------------------------------------------------------------
    # Routing state
    # ------------------------------------------------------------------

    def _routing_path(self) -> str:
        assert self.state_dir is not None
        return os.path.join(self.state_dir, "routing.json")

    def _load_routing(self) -> None:
        try:
            with open(self._routing_path(), encoding="utf-8") as handle:
                data = json.load(handle)
        except FileNotFoundError:
            return
        if data.get("schema") != ROUTING_SCHEMA:
            raise ValueError(
                f"unexpected routing state schema {data.get('schema')!r} "
                f"in {self._routing_path()}"
            )
        overrides = data.get("overrides", {})
        self._overrides = {
            stream: shard
            for stream, shard in overrides.items()
            if shard in self.backends
        }
        self._streams.update(self._overrides)

    def _save_routing(self) -> None:
        if self.state_dir is None:
            return
        os.makedirs(self.state_dir, exist_ok=True)
        path = self._routing_path()
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(
                {"schema": ROUTING_SCHEMA, "overrides": self._overrides},
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
        os.replace(tmp, path)

    def owner_of(self, stream: str) -> str:
        """Where a stream's records go right now: migration override,
        else last known placement, else the ring."""
        shard = self._overrides.get(stream) or self._streams.get(stream)
        if shard is not None:
            return shard
        return self.ring.owner(stream)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def _run_core(self) -> RunReport:
        self._migration_lock = asyncio.Lock()
        with isolated_registry() as registry:
            with span("run"):
                with span("spawn"):
                    await asyncio.to_thread(self._start_shards)
                with span("serve"):
                    await self._serve_until_shutdown()
                with span("drain"):
                    await self._drain()
            self._merge_shard_reports(registry)
            self.report = build_run_report(
                "route",
                argv=self.argv,
                config={
                    "shards": [spec.name for spec in self.shards],
                    "replicas": self.ring.replicas,
                },
                stats=self.stats(),
                registry=registry,
            )
        if self.metrics_out:
            write_run_report(self.metrics_out, self.report)
        return self.report

    def _start_shards(self) -> None:
        """Spawn supervised shard children, then dial every backend."""
        for spec in self.shards:
            if spec.argv is None:
                continue
            supervisor = Supervisor(
                spec.argv,
                max_restarts=self.supervisor_max_restarts,
                backoff_s=self.supervisor_backoff_s,
            )
            self._supervisors[spec.name] = supervisor
            thread = threading.Thread(
                target=self._run_supervisor,
                args=(spec.name, supervisor),
                name=f"domo-shard-{spec.name}",
                daemon=True,
            )
            self._supervisor_threads[spec.name] = thread
            thread.start()
        for name in sorted(self.backends):
            self.backends[name].connect_sync()

    def _run_supervisor(self, name: str, supervisor: Supervisor) -> None:
        try:
            supervisor.run()
        except CrashLoopError as exc:
            # The breaker tripped: the shard is gone for good. Record
            # it so HEALTH/STATS surface the reason; in-flight commands
            # fail on their reconnect deadline.
            self._shard_errors[name] = str(exc)
        except Exception as exc:  # noqa: BLE001 - never kill the router
            self._shard_errors[name] = f"{type(exc).__name__}: {exc}"

    async def _drain(self) -> None:
        await self._close_connections()
        for name in sorted(self.backends):
            backend = self.backends[name]
            async with backend.lock:
                try:
                    await asyncio.to_thread(backend.close_sync)
                except _RESET_ERRORS:
                    pass
        await asyncio.to_thread(self._stop_shards)

    def _stop_shards(self) -> None:
        for supervisor in self._supervisors.values():
            supervisor.stop()
        for thread in self._supervisor_threads.values():
            thread.join(timeout=60.0)

    def _merge_shard_reports(self, registry) -> None:
        """Fold each shard's shutdown report into the router registry,
        re-rooted under ``shards/<name>/`` so the merged
        ``domo.run_report/1`` covers the whole tier."""
        for spec in self.shards:
            if not spec.metrics_path:
                continue
            try:
                with open(spec.metrics_path, encoding="utf-8") as handle:
                    data = json.load(handle)
            except (OSError, ValueError):
                continue  # shard killed before writing; nothing to merge
            registry.merge(
                report_registry_snapshot(data, prefix=f"shards/{spec.name}")
            )

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------

    async def _with_stream_backend(self, stream: str, op):
        """Run a blocking backend op for a stream, under its shard's
        lock, re-resolving ownership after the lock is acquired.

        A migration holds both backend locks and flips the routing maps
        before releasing them, so an operation that waited out a
        migration sees the new owner here and retries against it —
        records can never leak to a shard the stream just left.
        """
        while True:
            shard = self.owner_of(stream)
            backend = self.backends[shard]
            async with backend.lock:
                if self.owner_of(stream) != shard:
                    continue
                result = await asyncio.to_thread(op, backend)
                self._streams[stream] = shard
                return shard, result

    async def handle_record(
        self, conn_id: int, record: RecordLine, writer
    ) -> None:
        data = encode_record(record.stream, record.packet)
        try:
            await self._with_stream_backend(
                record.stream,
                lambda backend: backend.forward_sync(record.stream, data),
            )
        except Exception as exc:  # noqa: BLE001 - shard down past deadline
            self._records_rejected += 1
            await self._send(
                writer,
                error_response(
                    f"shard unavailable for stream {record.stream!r}: "
                    f"{type(exc).__name__}: {exc}",
                    stream=record.stream,
                    **{"async": True},
                ),
            )
            return
        self._records_accepted += 1

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------

    async def handle_command(self, cmd: CommandLine) -> dict:
        try:
            if cmd.verb == "HEALTH":
                return await self._cmd_fanout("HEALTH")
            if cmd.verb == "STATS":
                return await self._cmd_fanout("STATS")
            if cmd.verb == "RESULTS":
                return await self._cmd_results(cmd.args)
            if cmd.verb == "FLUSH":
                return await self._cmd_flush(cmd.args)
            if cmd.verb == "MIGRATE":
                return await self._cmd_migrate(cmd.args)
            if cmd.verb == "DRAIN":
                return await self._cmd_drain(cmd.args)
            if cmd.verb == "QUIT":
                return {"ok": True, "bye": True}
            return error_response(f"unknown command {cmd.verb!r}")
        except ProtocolError as exc:
            return error_response(str(exc))
        except Exception as exc:  # noqa: BLE001 - one bad command must
            # never take the router down; the client gets the reason.
            return error_response(f"{type(exc).__name__}: {exc}")

    async def _cmd_fanout(self, verb: str) -> dict:
        """HEALTH/STATS across every shard, merged into one reply."""

        async def one(name: str) -> tuple[str, dict]:
            backend = self.backends[name]
            try:
                async with backend.lock:
                    reply = await asyncio.to_thread(
                        backend.command_sync, verb
                    )
            except Exception as exc:  # noqa: BLE001 - report, don't raise
                reply = error_response(f"{type(exc).__name__}: {exc}")
                if name in self._shard_errors:
                    reply["crash_loop"] = self._shard_errors[name]
            return name, reply

        pairs = await asyncio.gather(*(one(n) for n in sorted(self.backends)))
        per_shard = dict(pairs)
        healthy = all(reply.get("ok") for reply in per_shard.values())
        reply = {
            "ok": healthy,
            "status": "routing",
            "shards": per_shard,
        }
        if verb == "STATS":
            own = self.stats()
            reply["router"] = own["router"]
            reply["routing"] = own["shards"]
        else:
            reply["streams"] = len(self._streams)
            reply["ring"] = list(self.ring.shards)
        return reply

    async def _cmd_results(self, args: tuple[str, ...]) -> dict:
        if not args:
            raise ProtocolError("RESULTS needs a stream id")
        stream = args[0]
        since: int | dict[str, int] = -1
        rest = list(args[1:])
        while rest:
            flag = rest.pop(0)
            if flag == "--since" and rest:
                since = parse_since(rest.pop(0))
            else:
                raise ProtocolError(f"unknown RESULTS argument {flag!r}")
        effective = cursor_since(since)
        shard, reply = await self._with_stream_backend(
            stream, lambda backend: backend.results_sync(stream, effective)
        )
        if reply.get("ok"):
            entries = merge_vector_cursor(
                since, shard, int(reply.get("last_solve_index", -1))
            )
            reply["cursor"] = encode_vector_cursor(entries)
        reply["shard"] = shard
        return reply

    async def _cmd_flush(self, args: tuple[str, ...]) -> dict:
        if len(args) != 1:
            raise ProtocolError("FLUSH needs exactly one stream id")
        stream = args[0]
        shard, reply = await self._with_stream_backend(
            stream, lambda backend: backend.command_sync(f"FLUSH {stream}")
        )
        reply["shard"] = shard
        return reply

    # ------------------------------------------------------------------
    # Migration
    # ------------------------------------------------------------------

    async def _cmd_migrate(self, args: tuple[str, ...]) -> dict:
        if not args or len(args) > 2:
            raise ProtocolError("MIGRATE takes a stream id and optionally "
                                "a target shard")
        stream = args[0]
        assert self._migration_lock is not None
        async with self._migration_lock:
            source = self.owner_of(stream)
            if len(args) == 2:
                target = args[1]
                if target not in self.backends:
                    return error_response(f"unknown shard {target!r}")
                if target in self._drained:
                    return error_response(f"shard {target!r} is drained")
            else:
                try:
                    target = self.ring.successor(stream, exclude={source})
                except LookupError:
                    return error_response(
                        "no other shard to migrate to"
                    )
            if target == source:
                return {
                    "ok": True,
                    "stream": stream,
                    "from": source,
                    "to": target,
                    "noop": True,
                }
            return await self._migrate(stream, source, target)

    async def _migrate(self, stream: str, source: str, target: str) -> dict:
        """EXPORT on the source, IMPORT on the target, flip the maps.

        Both backend locks are held for the whole handoff (migrations
        are serialized by ``_migration_lock``, so the two-lock acquire
        cannot deadlock another migration, and forwards only ever hold
        one lock without waiting for a second). The routing maps flip
        *inside* the locks: any record or command that was parked on
        either lock re-resolves ownership afterwards and lands on the
        target — after its IMPORT, never before.

        Failure discipline: EXPORT retires the stream on the source
        (its WAL directory is gone when the reply lands), so from that
        point the exported document is the only copy of the stream's
        state and every failure path must put it *somewhere durable*
        before surfacing an error. A refused or unreachable target gets
        the document IMPORTed back onto the source; if even that fails
        (source down too) the blob is parked in :attr:`_orphans`, and a
        retried MIGRATE whose EXPORT finds the source empty moves the
        parked copy instead. Nothing is ever dropped on the floor.
        """
        src = self.backends[source]
        dst = self.backends[target]
        async with src.lock:
            async with dst.lock:
                exported = None
                export_failure: str | None = None
                try:
                    exported = await asyncio.to_thread(
                        src.command_sync, f"EXPORT {stream}"
                    )
                except Exception as exc:  # noqa: BLE001 - source down
                    export_failure = f"{type(exc).__name__}: {exc}"
                if exported is not None and exported.get("ok"):
                    document = exported["state"]
                    blob = base64.b64encode(
                        json.dumps(
                            document, separators=(",", ":"), allow_nan=False
                        ).encode("utf-8")
                    ).decode("ascii")
                elif stream in self._orphans:
                    # The source lost the stream (or is unreachable),
                    # but a prior failed migration parked its state
                    # here — move that copy instead.
                    blob = self._orphans[stream]
                elif exported is not None:
                    exported.setdefault("stream", stream)
                    exported["from"] = source
                    return exported
                else:
                    return error_response(
                        f"EXPORT on {source!r} failed: {export_failure}",
                        stream=stream,
                    )
                imported = None
                import_failure: str | None = None
                try:
                    imported = await asyncio.to_thread(
                        dst.command_sync, f"IMPORT {stream} {blob}"
                    )
                    if not imported.get("ok"):
                        import_failure = str(imported.get("error"))
                except Exception as exc:  # noqa: BLE001 - target down
                    import_failure = f"{type(exc).__name__}: {exc}"
                if import_failure is not None:
                    # Undo: the source already retired the stream, so
                    # push the document back where it came from rather
                    # than stranding the only copy in router memory.
                    restored = await self._restore_to_source(
                        stream, src, blob
                    )
                    where = (
                        f"state restored to {source!r}"
                        if restored
                        else "state parked in router orphans; retry MIGRATE"
                    )
                    return error_response(
                        f"IMPORT on {target!r} failed: {import_failure} "
                        f"({where})",
                        stream=stream,
                    )
                self._orphans.pop(stream, None)
                # Hand the resend buffer over with the stream, trimmed
                # to what the target just made durable. Flip the maps
                # before pushing the tail: the state now lives on the
                # target, and flipping late would let a resend failure
                # route new records back to the source, resurrecting
                # the stream there from scratch.
                buffer = src.pop_buffer(stream)
                if buffer is None:
                    buffer = _StreamBuffer()
                self._overrides[stream] = target
                self._streams[stream] = target
                self._save_routing()
                self.migrations += 1
                resend_failure: str | None = None
                try:
                    await asyncio.to_thread(
                        dst.adopt_sync,
                        stream,
                        buffer,
                        int(imported.get("records_durable", 0)),
                    )
                except Exception as exc:  # noqa: BLE001 - tolerated:
                    # adopt_sync installed the buffer before sending,
                    # so the unacked tail is resynced by the target's
                    # next connect/failover.
                    resend_failure = f"{type(exc).__name__}: {exc}"
        reply = {
            "ok": True,
            "stream": stream,
            "from": source,
            "to": target,
            "records_durable": imported.get("records_durable"),
            "windows_committed": imported.get("windows_committed"),
        }
        if resend_failure is not None:
            reply["resend_pending"] = resend_failure
        return reply

    async def _restore_to_source(
        self, stream: str, src: ShardBackend, blob: str
    ) -> bool:
        """Best-effort IMPORT of a failed migration's document back to
        its source; parks the blob in :attr:`_orphans` if that fails."""
        try:
            restored = await asyncio.to_thread(
                src.command_sync, f"IMPORT {stream} {blob}"
            )
            ok = bool(restored.get("ok"))
        except Exception:  # noqa: BLE001 - source down too
            ok = False
        if ok:
            self._orphans.pop(stream, None)
        else:
            self._orphans[stream] = blob
        return ok

    async def _cmd_drain(self, args: tuple[str, ...]) -> dict:
        if len(args) != 1:
            raise ProtocolError("DRAIN needs exactly one shard name")
        shard = args[0]
        if shard not in self.backends:
            return error_response(f"unknown shard {shard!r}")
        assert self._migration_lock is not None
        async with self._migration_lock:
            if shard in self._drained:
                return error_response(f"shard {shard!r} already drained")
            if len(self.ring) <= 1:
                return error_response("cannot drain the last shard")
            # DRAIN must move what the shard actually holds, not just
            # what this router process has routed: sessions the shard
            # recovered from its WAL after a *router* restart never
            # appear in _streams, and leaving them behind would strand
            # them on a shard that is about to leave the ring.
            backend = self.backends[shard]
            known = {
                s for s, owner in self._streams.items() if owner == shard
            }
            try:
                async with backend.lock:
                    reply = await asyncio.to_thread(
                        backend.command_sync, "STATS"
                    )
                if reply.get("ok"):
                    known.update(reply.get("streams", {}))
            except Exception:  # noqa: BLE001 - shard unreachable; drain
                pass  # the router-known set, surfacing per-stream errors
            # Off the ring first: new streams stop landing here. Known
            # streams keep routing to it via _streams until each one's
            # migration flips the maps.
            self.ring.remove(shard)
            self._drained.add(shard)
            moved = []
            for stream in sorted(known):
                target = self.ring.owner(stream)
                try:
                    result = await self._migrate(stream, shard, target)
                except Exception as exc:  # noqa: BLE001 - one stranded
                    # stream must not abort the rest of the drain
                    result = error_response(
                        f"{type(exc).__name__}: {exc}", stream=stream
                    )
                moved.append(result)
        return {
            "ok": all(entry.get("ok") for entry in moved),
            "shard": shard,
            "migrated": moved,
            "ring": list(self.ring.shards),
        }

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        shards = {}
        for name in sorted(self.backends):
            backend = self.backends[name]
            # One locked snapshot per backend: forward_sync mutates the
            # buffers dict from to_thread workers while this runs on
            # the event loop.
            streams, buffered = backend.buffer_stats()
            shards[name] = {
                "socket": backend.spec.socket_path,
                "supervised": backend.spec.argv is not None,
                "streams": streams,
                "buffered_lines": buffered,
                "records_forwarded": backend.records_forwarded,
                "records_resent": backend.records_resent,
                "failovers": backend.failovers,
                "drained": name in self._drained,
            }
            if name in self._shard_errors:
                shards[name]["crash_loop"] = self._shard_errors[name]
        return {
            "router": {
                **self.connection_stats(),
                "streams": len(self._streams),
                "overrides": len(self._overrides),
                "orphans": sorted(self._orphans),
                "migrations": self.migrations,
                "ring": {
                    "shards": list(self.ring.shards),
                    "replicas": self.ring.replicas,
                },
            },
            "shards": shards,
        }
