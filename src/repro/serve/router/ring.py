"""Consistent-hash ring assigning stream ids to shards.

Placement must be a pure function of ``(shard set, stream id)``:

* **Deterministic across processes.** The router that spawned the
  shards, a restarted router recovering its topology, and a test
  subprocess verifying placement must all agree. That rules out
  Python's built-in ``hash`` (salted per process by ``PYTHONHASHSEED``)
  — points come from BLAKE2b instead.
* **Minimal remapping.** When a shard joins or leaves, only the streams
  whose arc it owned move (expected ``1/N`` of them, bounded well under
  ``2/N`` with enough virtual nodes); everything else keeps its shard,
  its WAL directory, and its warm engine. A modulo assignment would
  reshuffle nearly everything on every topology change, turning one
  drain into a cluster-wide migration storm.

Each shard contributes ``replicas`` virtual points ``blake2b(f"{shard}
#{i}")``; a stream lands on the first point clockwise from
``blake2b(stream_id)``. Lookup is a binary search over the sorted point
list — O(log(N·replicas)) with no per-stream state anywhere.
"""

from __future__ import annotations

import bisect
import hashlib

__all__ = ["HashRing"]


def _point(key: str) -> int:
    """A position on the ring: 64 bits of BLAKE2b over the UTF-8 key."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent-hash ring over named shards.

    Args:
        shards: initial shard names.
        replicas: virtual points per shard. More points smooth the
            load split and tighten the remap bound at the cost of a
            larger (still tiny) sorted array.
    """

    def __init__(self, shards=(), *, replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._shards: set[str] = set()
        #: sorted, parallel arrays: point value -> owning shard.
        self._points: list[int] = []
        self._owners: list[str] = []
        for shard in shards:
            self.add(shard)

    # -- topology ------------------------------------------------------

    def add(self, shard: str) -> None:
        if not isinstance(shard, str) or not shard:
            raise ValueError(f"shard name must be a nonempty string: {shard!r}")
        if shard in self._shards:
            return
        self._shards.add(shard)
        for i in range(self.replicas):
            point = _point(f"{shard}#{i}")
            at = bisect.bisect_left(self._points, point)
            # Tie-break colliding points by shard name so insertion
            # order cannot influence placement.
            while (
                at < len(self._points)
                and self._points[at] == point
                and self._owners[at] < shard
            ):
                at += 1
            self._points.insert(at, point)
            self._owners.insert(at, shard)

    def remove(self, shard: str) -> None:
        if shard not in self._shards:
            return
        self._shards.discard(shard)
        keep = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != shard
        ]
        self._points = [point for point, _ in keep]
        self._owners = [owner for _, owner in keep]

    @property
    def shards(self) -> tuple[str, ...]:
        return tuple(sorted(self._shards))

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard: str) -> bool:
        return shard in self._shards

    # -- placement -----------------------------------------------------

    def owner(self, stream_id: str) -> str:
        """The shard owning ``stream_id`` under the current topology.

        Any string keys — including ``""`` and unicode ids the wire
        protocol would reject — hash to a stable position, so callers
        never need a pre-validation special case.
        """
        return self._walk(stream_id, exclude=frozenset())

    def successor(self, stream_id: str, exclude) -> str:
        """The first shard clockwise from the stream, skipping
        ``exclude`` — the migration target when the owner drains."""
        return self._walk(stream_id, exclude=frozenset(exclude))

    def _walk(self, stream_id: str, exclude: frozenset) -> str:
        candidates = self._shards - exclude
        if not candidates:
            raise LookupError("no shards on the ring")
        start = bisect.bisect_right(self._points, _point(str(stream_id)))
        n = len(self._points)
        for offset in range(n):
            owner = self._owners[(start + offset) % n]
            if owner not in exclude:
                return owner
        raise LookupError("no shards on the ring")  # pragma: no cover
