"""Sharded serve tier: consistent-hash router over N shard processes.

* :mod:`~repro.serve.router.ring` — deterministic consistent-hash ring
  (BLAKE2b virtual nodes) mapping stream ids onto shards.
* :mod:`~repro.serve.router.router` — the asyncio front door: client
  listeners, per-shard backend connections with resend buffers and
  bounded failover, live stream migration (EXPORT/IMPORT on the durable
  state codec), and the vector-cursor RESULTS surface.

``domo route --shards N --state-dir DIR --socket PATH`` is the CLI
entry point; see DESIGN.md §9 for the protocol and invariants.
"""

from repro.serve.router.ring import HashRing
from repro.serve.router.router import RouterServer, ShardSpec

__all__ = ["HashRing", "RouterServer", "ShardSpec"]
