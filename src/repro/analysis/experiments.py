"""Evaluation primitives shared by all figures (paper §VI).

Three comparisons recur in Figs. 6-8:

* **estimated-value accuracy** — |reconstructed − true| per-hop delay,
  Domo vs MNT (midpoints of its bounds);
* **bound accuracy** — upper − lower width of the per-hop delay bounds,
  Domo vs MNT;
* **displacement** — the event-order metric, Domo vs MessageTracing.

Each ``evaluate_*`` function takes a trace (plus reconstructor configs)
and returns a small result object carrying :class:`ErrorStats` per method.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.message_tracing import MessageTracingReconstructor
from repro.baselines.mnt import MntConfig, MntReconstructor
from repro.core.metrics import (
    ErrorStats,
    bound_width_stats,
    element_displacements,
    estimation_error_stats,
)
from repro.core.pipeline import DomoConfig, DomoReconstructor
from repro.analysis.scenarios import (
    SUBSTRATE_ARRIVAL_MARGIN_MS,
    SUBSTRATE_DEPARTURE_MARGIN_MS,
    SUBSTRATE_OMEGA_MS,
)
from repro.sim.trace import TraceBundle


def substrate_domo_config(**overrides) -> DomoConfig:
    """DomoConfig tuned to this substrate's MAC timing.

    The paper's defaults (omega = 1 ms, no event-spacing margins) are
    substrate-agnostic; our simulator's MAC guarantees larger minimum
    spacings, which both Domo and MNT may soundly exploit. All evaluation
    functions use this config unless an explicit one is passed.
    """
    config = DomoConfig(omega_ms=SUBSTRATE_OMEGA_MS, **overrides)
    config.constraints.omega_ms = SUBSTRATE_OMEGA_MS
    config.constraints.fifo_arrival_margin_ms = SUBSTRATE_ARRIVAL_MARGIN_MS
    config.constraints.fifo_departure_margin_ms = (
        SUBSTRATE_DEPARTURE_MARGIN_MS
    )
    return config


def substrate_mnt_config() -> MntConfig:
    """MNT with the same substrate-derived omega (fair comparison)."""
    return MntConfig(omega_ms=SUBSTRATE_OMEGA_MS)


@dataclass
class AccuracyComparison:
    """Fig. 6(a)-style result: estimation error per method."""

    domo: ErrorStats
    mnt: ErrorStats
    domo_time_per_delay_ms: float = 0.0
    per_node_average_delay: dict[int, tuple[float, float, float]] = field(
        default_factory=dict
    )  # node -> (true, domo, mnt)


@dataclass
class BoundsComparison:
    """Fig. 6(b)-style result: delay bound widths per method."""

    domo: ErrorStats
    mnt: ErrorStats
    domo_time_per_bound_ms: float = 0.0


@dataclass
class DisplacementComparison:
    """Fig. 6(c)-style result: event-order displacement per method."""

    domo: ErrorStats
    message_tracing: ErrorStats


def evaluate_accuracy(
    trace: TraceBundle,
    domo_config: DomoConfig | None = None,
    mnt_config: MntConfig | None = None,
) -> AccuracyComparison:
    """Estimated-value accuracy of Domo vs MNT against ground truth."""
    domo = DomoReconstructor(domo_config or substrate_domo_config())
    estimate = domo.estimate(trace)
    mnt = MntReconstructor(
        mnt_config or substrate_mnt_config()
    ).reconstruct(trace)

    domo_errors: list[float] = []
    mnt_errors: list[float] = []
    per_node: dict[int, list[tuple[float, float, float]]] = {}
    for packet in trace.received:
        truth = trace.truth_of(packet.packet_id).node_delays()
        domo_delays = estimate.delays_of(packet.packet_id)
        mnt_delays = mnt.estimated_delays(packet.packet_id)
        for hop, (true_d, domo_d, mnt_d) in enumerate(
            zip(truth, domo_delays, mnt_delays)
        ):
            domo_errors.append(domo_d - true_d)
            mnt_errors.append(mnt_d - true_d)
            per_node.setdefault(packet.path[hop], []).append(
                (true_d, domo_d, mnt_d)
            )
    averages = {
        node: (
            sum(t for t, _, _ in rows) / len(rows),
            sum(d for _, d, _ in rows) / len(rows),
            sum(m for _, _, m in rows) / len(rows),
        )
        for node, rows in per_node.items()
    }
    return AccuracyComparison(
        domo=estimation_error_stats(domo_errors),
        mnt=estimation_error_stats(mnt_errors),
        domo_time_per_delay_ms=estimate.time_per_delay_ms,
        per_node_average_delay=averages,
    )


def evaluate_bounds(
    trace: TraceBundle,
    domo_config: DomoConfig | None = None,
    mnt_config: MntConfig | None = None,
    max_packets: int | None = None,
) -> BoundsComparison:
    """Bound widths of Domo vs MNT.

    ``max_packets`` limits Domo's LP targets (the paper reports per-bound
    cost, so sampling preserves the metric while bounding runtime); MNT is
    cheap and always bounds everything.
    """
    packets = trace.received
    wanted = None
    if max_packets is not None and len(packets) > max_packets:
        wanted = [p.packet_id for p in packets[:max_packets]]
    domo = DomoReconstructor(domo_config or substrate_domo_config())
    bounds = domo.bounds(trace, packet_ids=wanted)
    domo_widths = []
    for pid in set(key.packet_id for key in bounds.bounds):
        domo_widths.extend(hi - lo for lo, hi in bounds.delay_bounds(pid))

    mnt = MntReconstructor(
        mnt_config or substrate_mnt_config()
    ).reconstruct(trace)
    return BoundsComparison(
        domo=bound_width_stats(domo_widths),
        mnt=bound_width_stats(mnt.delay_widths()),
        domo_time_per_bound_ms=bounds.time_per_bound_ms,
    )


def evaluate_displacement(
    trace: TraceBundle,
    domo_config: DomoConfig | None = None,
) -> DisplacementComparison:
    """Event-order displacement of Domo vs MessageTracing."""
    tracer = MessageTracingReconstructor()
    truth_order = tracer.true_transmission_order(trace)
    tracing_order = tracer.global_transmission_order(trace)
    estimate = DomoReconstructor(
        domo_config or substrate_domo_config()
    ).estimate(trace)
    domo_order = tracer.order_from_arrival_times(estimate.arrival_times)
    return DisplacementComparison(
        domo=ErrorStats(element_displacements(domo_order, truth_order)),
        message_tracing=ErrorStats(
            element_displacements(tracing_order, truth_order)
        ),
    )
