"""Plain-text rendering of experiment results (no plotting deps offline)."""

from __future__ import annotations

from typing import Sequence

from repro.core.metrics import ErrorStats


def format_stats_table(
    rows: Sequence[tuple[str, ErrorStats]],
    value_label: str = "value",
    thresholds: Sequence[float] = (),
) -> str:
    """A fixed-width table of summary statistics, one method per row."""
    header = f"{'method':<18}{'n':>8}{'mean':>10}{'median':>10}{'p90':>10}"
    for t in thresholds:
        header += f"{'<' + format(t, 'g') + 'ms':>10}"
    lines = [f"[{value_label}]", header, "-" * len(header)]
    for name, stats in rows:
        line = (
            f"{name:<18}{stats.count:>8}{stats.mean:>10.3f}"
            f"{stats.median:>10.3f}{stats.percentile(90):>10.3f}"
        )
        for t in thresholds:
            line += f"{stats.fraction_below(t):>10.2f}"
        lines.append(line)
    return "\n".join(lines)


def format_cdf(
    rows: Sequence[tuple[str, ErrorStats]],
    points: int = 10,
    unit: str = "ms",
) -> str:
    """Aligned CDF series (the paper's figures are CDF plots)."""
    lines = []
    for name, stats in rows:
        lines.append(f"CDF {name} ({unit}):")
        series = stats.cdf(points=points)
        lines.append(
            "  "
            + "  ".join(f"{value:8.2f}@{frac:4.2f}" for value, frac in series)
        )
    return "\n".join(lines)


def format_sweep_table(
    header: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Generic parameter-sweep table (Figs. 7-10)."""
    widths = [max(len(str(h)), 12) for h in header]
    lines = [
        "".join(f"{str(h):>{w}}" for h, w in zip(header, widths)),
    ]
    lines.append("-" * sum(widths))
    for row in rows:
        cells = []
        for value, w in zip(row, widths):
            if isinstance(value, float):
                cells.append(f"{value:>{w}.3f}")
            else:
                cells.append(f"{str(value):>{w}}")
        lines.append("".join(cells))
    return "\n".join(lines)
