"""Standard simulation scenarios for the paper's experiments.

The paper evaluates on TOSSIM networks of 100 / 225 / 400 nodes uniformly
placed in a square, running CTP-style periodic collection (§VI.A). One
function defines that workload so every figure uses identical settings.
"""

from __future__ import annotations

from repro.sim.mac import MacConfig
from repro.sim.radio import RadioConfig
from repro.sim.simulator import NetworkConfig

#: the true minimum sojourn time of this substrate's MAC: processing
#: floor (1.0) + minimum initial backoff (0.3) + airtime of the smallest
#: frame (~1.38 ms), with a small safety margin. Handed to Domo *and* MNT
#: as their omega so both methods see the same (sound) prior.
SUBSTRATE_OMEGA_MS = 2.5
#: minimum spacing of two successive receptions at one radio (airtime).
SUBSTRATE_ARRIVAL_MARGIN_MS = 1.2
#: minimum spacing of two successive departures from one node
#: (ack turnaround + processing floor + min backoff + airtime).
SUBSTRATE_DEPARTURE_MARGIN_MS = 3.0


def paper_scenario(
    num_nodes: int = 100,
    seed: int = 1,
    duration_ms: float = 120_000.0,
    packet_period_ms: float = 8_000.0,
) -> NetworkConfig:
    """The evaluation workload: uniform placement, periodic collection.

    Defaults are scaled for laptop runtimes (100 nodes, 2 simulated
    minutes); the paper's full scale is ``num_nodes=400`` with longer
    runs — pass those explicitly (or set ``REPRO_FULL=1`` for the
    benchmark scripts) to reproduce at full size.

    The radio uses a longer-range profile than the unit-test default
    (CitySee-class deployments use amplified radios), which keeps path
    lengths in the paper's regime (~4-6 hops at 100 nodes) instead of the
    10+ hops a 60 m range would produce on the same field.
    """
    return NetworkConfig(
        num_nodes=num_nodes,
        placement="uniform",
        duration_ms=duration_ms,
        packet_period_ms=packet_period_ms,
        seed=seed,
        radio=RadioConfig(
            reference_loss_db=42.0,
            path_loss_exponent=2.8,
            max_range_m=90.0,
        ),
        # TinyOS's CC2420 CSMA uses a [0.6, 4.9] ms initial backoff — a
        # tighter window than the unit-test default, matching the TOSSIM
        # delay regime the paper evaluates in.
        mac=MacConfig(
            initial_backoff_min_ms=0.6,
            initial_backoff_max_ms=4.9,
        ),
    )
