"""Experiment harness: scenarios, evaluations and text rendering.

Everything the ``benchmarks/`` scripts and the examples share lives here,
so each figure's script is a thin veneer over a tested library function.
"""

from repro.analysis.experiments import (
    AccuracyComparison,
    BoundsComparison,
    DisplacementComparison,
    evaluate_accuracy,
    evaluate_bounds,
    evaluate_displacement,
)
from repro.analysis.report import generate_report
from repro.analysis.scenarios import paper_scenario
from repro.analysis.tables import (
    format_cdf,
    format_stats_table,
    format_sweep_table,
)

__all__ = [
    "AccuracyComparison",
    "BoundsComparison",
    "DisplacementComparison",
    "evaluate_accuracy",
    "evaluate_bounds",
    "evaluate_displacement",
    "format_cdf",
    "format_stats_table",
    "format_sweep_table",
    "generate_report",
    "paper_scenario",
]
