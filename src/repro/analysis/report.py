"""One-shot diagnostic report over a trace: the network-operator view.

:func:`generate_report` produces the text a deployment operator would
want from Domo: trace health, reconstruction accuracy (when ground truth
is available), the slowest nodes by reconstructed sojourn time, and the
method comparison. Used by ``domo report``.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.experiments import (
    evaluate_accuracy,
    evaluate_displacement,
    substrate_domo_config,
)
from repro.analysis.tables import format_stats_table
from repro.core.pipeline import DomoReconstructor
from repro.sim.trace import TraceBundle


def _trace_summary(trace: TraceBundle) -> list[str]:
    hops = [p.path_length - 1 for p in trace.received]
    e2e = [p.e2e_delay_ms for p in trace.received]
    lines = [
        "== trace ==",
        f"received packets   : {trace.num_received}",
        f"lost packets       : {len(trace.lost_packets)}",
        f"delivery ratio     : {trace.delivery_ratio:.3f}",
    ]
    if hops:
        lines += [
            f"mean path length   : {np.mean(hops):.2f} hops",
            f"mean e2e delay     : {np.mean(e2e):.2f} ms "
            f"(p95 {np.percentile(e2e, 95):.2f} ms)",
        ]
    return lines


def _hotspots(trace: TraceBundle, estimate, top: int = 5) -> list[str]:
    per_node: dict[int, list[float]] = {}
    for packet in trace.received:
        delays = estimate.delays_of(packet.packet_id)
        for hop, delay in enumerate(delays):
            per_node.setdefault(packet.path[hop], []).append(delay)
    ranked = sorted(
        (
            (float(np.mean(values)), node, len(values))
            for node, values in per_node.items()
            if len(values) >= 5
        ),
        reverse=True,
    )
    lines = ["== slowest nodes (reconstructed mean sojourn) =="]
    for mean_delay, node, count in ranked[:top]:
        lines.append(
            f"node {node:4d}: {mean_delay:8.2f} ms over {count} packets"
        )
    return lines


def generate_report(
    trace: TraceBundle,
    compare_baselines: bool = True,
    domo_config=None,
) -> str:
    """Full text report for one trace.

    Accuracy sections require the trace's ground truth (always present
    for simulated traces); the hotspot ranking needs only the sink data.
    """
    config = domo_config or substrate_domo_config()
    sections: list[list[str]] = [_trace_summary(trace)]

    estimate = DomoReconstructor(config).estimate(trace)
    sections.append(_hotspots(trace, estimate))

    if trace.ground_truth:
        accuracy = evaluate_accuracy(trace, domo_config=config)
        rows = [("Domo", accuracy.domo)]
        if compare_baselines:
            rows.append(("MNT", accuracy.mnt))
        sections.append(
            [
                "== estimation accuracy vs ground truth ==",
                format_stats_table(
                    rows, value_label="per-hop error (ms)", thresholds=(4.0,)
                ),
            ]
        )
        if compare_baselines and trace.node_logs:
            displacement = evaluate_displacement(trace, domo_config=config)
            sections.append(
                [
                    "== event-order displacement ==",
                    format_stats_table(
                        [
                            ("Domo", displacement.domo),
                            ("MessageTracing", displacement.message_tracing),
                        ],
                        value_label="displacement",
                    ),
                ]
            )
    return "\n".join("\n".join(section) + "\n" for section in sections)
