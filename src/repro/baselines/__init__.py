"""Reference baselines the paper compares against (§II.B, §VI).

* :mod:`repro.baselines.mnt` — MNT (Keller, Beutel, Thiele; SenSys'12):
  per-hop arrival-time *bounds* from bracketing each packet between the
  forwarding node's local packets, whose generation times are known.
* :mod:`repro.baselines.message_tracing` — MessageTracing (Sundaram &
  Eugster; DSN'13): per-node local logs of sent/received messages; the
  global send/receive *order* is reconstructed from the causal DAG.
"""

from repro.baselines.message_tracing import (
    MessageTracingConfig,
    MessageTracingReconstructor,
)
from repro.baselines.mnt import MntConfig, MntReconstruction, MntReconstructor

__all__ = [
    "MessageTracingConfig",
    "MessageTracingReconstructor",
    "MntConfig",
    "MntReconstruction",
    "MntReconstructor",
]
