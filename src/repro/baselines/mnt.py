"""MNT-style per-hop arrival-time bounds (Keller et al., SenSys'12).

MNT reconstructs, for each received packet ``p`` and each hop, the two
*local packets* of the forwarding node that bracket ``p`` in the node's
FIFO departure order. Local packets anchor time because their generation
instants are known at the sink; forwarded packets inherit bounds from
their brackets:

* ``p`` departed node ``n`` after ``l_before`` did, and ``l_before``
  departed no earlier than its own generation + omega;
* ``p`` was enqueued before ``l_after`` was generated, so p's *arrival*
  at ``n`` is at most ``t0(l_after)``; its departure precedes
  ``l_after``'s, which is over by ``t_sink(l_after)`` minus the remaining
  path's minimum delay.

The departure order itself is estimated the way MNT does in collection
trees: packets sharing a forwarder leave it in the order they reach the
sink (exactly FIFO when the downstream path is shared, a heuristic under
path divergence). Bounds are then sharpened by the same per-path
monotonicity propagation MNT's authors call "correlating information from
packets passing through the same forwarding nodes". Estimated values are
bound midpoints, matching the paper's evaluation methodology (§VI.A).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.intervals import (
    Interval,
    clip_to_valid,
    propagate_path_monotonicity,
    trivial_intervals,
)
from repro.core.records import ArrivalKey, TraceIndex
from repro.sim.packet import PacketId
from repro.sim.trace import ReceivedPacket, TraceBundle


@dataclass
class MntConfig:
    """Knobs of the MNT reconstruction."""

    omega_ms: float = 1.0
    #: rounds of bracket-then-propagate refinement.
    refinement_rounds: int = 3
    #: propagate bounds along each packet's path between rounds. The
    #: published MNT brackets against local packets and "correlates
    #: information from packets passing through the same forwarding
    #: nodes"; with this off only the literal one-shot bracketing runs,
    #: giving a strictly weaker (more paper-literal) baseline.
    propagate: bool = True


@dataclass
class MntReconstruction:
    """MNT's output: per-arrival-time intervals plus midpoint estimates."""

    intervals: dict[ArrivalKey, Interval]
    index: TraceIndex
    stats: dict = field(default_factory=dict)

    def arrival_bounds(self, packet_id: PacketId) -> list[Interval]:
        packet = self.index.by_id[packet_id]
        return [
            self.intervals[ArrivalKey(packet_id, hop)]
            for hop in range(packet.path_length)
        ]

    def delay_bounds(self, packet_id: PacketId) -> list[Interval]:
        arrivals = self.arrival_bounds(packet_id)
        return [
            (later[0] - earlier[1], later[1] - earlier[0])
            for earlier, later in zip(arrivals, arrivals[1:])
        ]

    def delay_widths(self) -> list[float]:
        widths = []
        for packet in self.index.packets:
            for lo, hi in self.delay_bounds(packet.packet_id):
                widths.append(hi - lo)
        return widths

    def estimated_arrival_times(self, packet_id: PacketId) -> list[float]:
        """Midpoints of the bounds (§VI.A: 'the average of the two bounds')."""
        return [
            0.5 * (lo + hi) for lo, hi in self.arrival_bounds(packet_id)
        ]

    def estimated_delays(self, packet_id: PacketId) -> list[float]:
        times = self.estimated_arrival_times(packet_id)
        return [b - a for a, b in zip(times, times[1:])]


class MntReconstructor:
    """Runs the MNT bracketing over a received trace."""

    def __init__(self, config: MntConfig | None = None) -> None:
        self.config = config or MntConfig()

    def reconstruct(self, trace) -> MntReconstruction:
        packets = (
            list(trace.received) if isinstance(trace, TraceBundle) else list(trace)
        )
        index = TraceIndex(packets, omega_ms=self.config.omega_ms)
        intervals = trivial_intervals(index)
        if self.config.propagate:
            propagate_path_monotonicity(index, intervals)

        brackets = 0
        rounds = self.config.refinement_rounds if self.config.propagate else 1
        for _ in range(max(1, rounds)):
            tightened = self._apply_brackets(index, intervals)
            brackets += tightened
            if self.config.propagate:
                tightened += propagate_path_monotonicity(index, intervals)
            clip_to_valid(intervals)
            if tightened == 0:
                break
        return MntReconstruction(
            intervals=intervals,
            index=index,
            stats={"bracket_tightenings": brackets},
        )

    # ------------------------------------------------------------------

    def _apply_brackets(
        self, index: TraceIndex, intervals: dict[ArrivalKey, Interval]
    ) -> int:
        """One pass of local-packet bracketing at every forwarder."""
        omega = self.config.omega_ms
        tightened = 0
        for node, visits in index.node_visits.items():
            # MNT's departure-order estimate: sink arrival order.
            ordered = sorted(visits, key=lambda item: item[0].sink_arrival_ms)
            # Positions of this node's local packets in that order.
            local_positions = [
                i
                for i, (packet, hop) in enumerate(ordered)
                if hop == 0 and packet.packet_id.source == node
            ]
            if not local_positions:
                continue
            for position, (packet, hop) in enumerate(ordered):
                if hop == 0 and packet.packet_id.source == node:
                    continue  # local packets are their own anchors
                before = [i for i in local_positions if i < position]
                after = [i for i in local_positions if i > position]
                arrive_key = ArrivalKey(packet.packet_id, hop)
                depart_key = ArrivalKey(packet.packet_id, hop + 1)
                if before:
                    l_before = ordered[before[-1]][0]
                    # p departed after l_before's departure (>= t0 + omega)
                    tightened += _raise_lower(
                        intervals, depart_key,
                        l_before.generation_time_ms + omega,
                    )
                    # FIFO: p was enqueued after l_before was generated.
                    tightened += _raise_lower(
                        intervals, arrive_key, l_before.generation_time_ms
                    )
                if after:
                    l_after = ordered[after[0]][0]
                    remaining = l_after.path_length - 2
                    departure_cap = (
                        l_after.sink_arrival_ms - max(0, remaining) * omega
                    )
                    tightened += _lower_upper(
                        intervals, depart_key, departure_cap
                    )
                    # p was enqueued before l_after was generated... no:
                    # before l_after *departed*; generation is the sound cap
                    # on l_after's enqueue, and FIFO gives arrival order.
                    tightened += _lower_upper(
                        intervals, arrive_key, l_after.generation_time_ms
                    )
        return tightened


def _raise_lower(intervals, key, value) -> int:
    lo, hi = intervals[key]
    if value > lo:
        intervals[key] = (value, hi)
        return 1
    return 0


def _lower_upper(intervals, key, value) -> int:
    lo, hi = intervals[key]
    if value < hi:
        intervals[key] = (lo, value)
        return 1
    return 0
