"""MessageTracing-style event-order reconstruction (Sundaram & Eugster).

MessageTracing records every message sent and received into each node's
local storage — no message overhead, but also no global timing. Offline,
the per-node logs are stitched into a causal DAG:

* consecutive entries of one node's log are ordered (local clocks order
  events *within* a node soundly);
* a packet's transmission links the sender's ``send`` entry to the
  receiver's ``recv`` entry (happens-before).

A deterministic topological sort of that DAG is MessageTracing's best
global order; how far it sits from the true order is exactly what the
paper's *displacement* metric measures (Fig. 6(c), 7(c), 8(c)). Domo's
counterpart order comes from sorting transmissions by estimated arrival
times.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from dataclasses import dataclass

from repro.sim.packet import PacketId
from repro.sim.trace import NodeLogEntry, TraceBundle

#: one transmission event: packet ``p`` arriving at hop ``h`` of its path
#: (the sender's send-SFD and receiver's receive-SFD coincide).
TransmissionEvent = tuple[PacketId, int]


@dataclass
class MessageTracingConfig:
    """Knobs (kept for interface symmetry; the method is parameter-free)."""

    #: restrict ordering to packets present in the received trace.
    received_only: bool = True


class MessageTracingReconstructor:
    """Builds the causal DAG from node logs and topologically sorts it."""

    def __init__(self, config: MessageTracingConfig | None = None) -> None:
        self.config = config or MessageTracingConfig()

    def global_transmission_order(
        self, trace: TraceBundle
    ) -> list[TransmissionEvent]:
        """MessageTracing's reconstructed global order of transmissions.

        Returns one event per (packet, hop >= 1) for received packets:
        the packet's arrival at that hop. Events are ordered by a
        deterministic Kahn topological sort of the causal DAG; ties are
        broken by (node id, log position) — information the method
        actually has, never by global time (which it lacks).
        """
        received_ids = (
            {p.packet_id for p in trace.received}
            if self.config.received_only
            else None
        )

        # Vertices: (node, log_position). Build edges.
        successors: dict[tuple, list] = defaultdict(list)
        indegree: dict[tuple, int] = defaultdict(int)
        vertices: list[tuple] = []
        entry_of: dict[tuple, NodeLogEntry] = {}

        send_at: dict[tuple[int, PacketId], tuple] = {}
        recv_at: dict[tuple[int, PacketId], tuple] = {}

        for node, log in trace.node_logs.items():
            previous = None
            for position, entry in enumerate(log):
                if received_ids is not None and entry.packet_id not in received_ids:
                    continue
                vertex = (node, position)
                vertices.append(vertex)
                entry_of[vertex] = entry
                indegree.setdefault(vertex, 0)
                if previous is not None:
                    successors[previous].append(vertex)
                    indegree[vertex] += 1
                previous = vertex
                if entry.kind == "send":
                    send_at[(node, entry.packet_id)] = vertex
                elif entry.kind == "recv":
                    recv_at[(node, entry.packet_id)] = vertex

        # Causal edges along each packet's path: the send logged at
        # path[i] happens-before the receive logged at path[i+1].
        for packet in trace.received:
            pid = packet.packet_id
            for a, b in zip(packet.path, packet.path[1:]):
                sender = send_at.get((a, pid))
                receiver = recv_at.get((b, pid))
                if sender is not None and receiver is not None:
                    successors[sender].append(receiver)
                    indegree[receiver] += 1

        # Deterministic Kahn. The tie-break uses the packet's position in
        # the *sink's own log* — information MessageTracing legitimately
        # has offline: every packet's causal chain terminates at the sink,
        # whose local log totally orders the arrivals. Events of packets
        # that reach the sink earlier are emitted earlier; global time is
        # never consulted.
        sink_position: dict[PacketId, int] = {}
        for rank, entry in enumerate(trace.node_logs.get(trace.sink, [])):
            if entry.kind == "recv" and entry.packet_id not in sink_position:
                sink_position[entry.packet_id] = rank
        last_rank = len(sink_position) + 1

        def priority(vertex: tuple) -> tuple:
            entry = entry_of[vertex]
            return (
                sink_position.get(entry.packet_id, last_rank),
                vertex[1],
                vertex[0],
            )

        ready = [(priority(v), v) for v in vertices if indegree[v] == 0]
        heapq.heapify(ready)
        order: list[tuple] = []
        while ready:
            _, vertex = heapq.heappop(ready)
            order.append(vertex)
            for successor in successors.get(vertex, ()):
                indegree[successor] -= 1
                if indegree[successor] == 0:
                    heapq.heappush(ready, (priority(successor), successor))
        if len(order) != len(vertices):
            # Lost acks make a sender's (single) send-log entry postdate
            # the receiver's first delivery, which can knot the DAG. Emit
            # the knotted remainder in priority order — a graceful
            # degradation of the reconstruction, counted for diagnostics.
            remainder = sorted(
                (v for v in vertices if indegree[v] > 0), key=priority
            )
            self.cycle_vertices = len(remainder)
            order.extend(remainder)
        else:
            self.cycle_vertices = 0

        # Project onto transmission events: the receive entries, numbered
        # per packet (k-th receive = arrival at hop k+1).
        events: list[TransmissionEvent] = []
        seen: dict[PacketId, int] = defaultdict(int)
        for vertex in order:
            entry = entry_of[vertex]
            if entry.kind == "recv":
                seen[entry.packet_id] += 1
                events.append((entry.packet_id, seen[entry.packet_id]))
        return events

    # ------------------------------------------------------------------

    @staticmethod
    def true_transmission_order(trace: TraceBundle) -> list[TransmissionEvent]:
        """Ground-truth global order of the same events."""
        events: list[tuple[float, PacketId, int]] = []
        for packet in trace.received:
            truth = trace.truth_of(packet.packet_id)
            for hop in range(1, len(truth.path)):
                events.append(
                    (truth.arrival_times_ms[hop], packet.packet_id, hop)
                )
        events.sort()
        return [(pid, hop) for _, pid, hop in events]

    @staticmethod
    def order_from_arrival_times(
        arrival_times: dict[PacketId, list[float]],
    ) -> list[TransmissionEvent]:
        """Transmission order implied by (e.g. Domo-) estimated times."""
        events: list[tuple[float, PacketId, int]] = []
        for packet_id, times in arrival_times.items():
            for hop in range(1, len(times)):
                events.append((times[hop], packet_id, hop))
        events.sort()
        return [(pid, hop) for _, pid, hop in events]
