"""The public Domo API: :class:`DomoReconstructor`.

Typical use::

    from repro import DomoConfig, DomoReconstructor, simulate_network

    trace = simulate_network(num_nodes=100, seed=1)
    domo = DomoReconstructor(DomoConfig())
    estimate = domo.estimate(trace.received)     # per-hop arrival times
    bounds = domo.bounds(trace.received)         # per-hop bound intervals

Both entry points accept the plain list of
:class:`~repro.sim.trace.ReceivedPacket` records — the four quantities the
sink actually has (path, t0, sink arrival, S(p)) — and never touch ground
truth.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field, replace

from repro.backends import CsConfig, DEFAULT_BACKEND, backend_names
from repro.core.bounds import BoundComputer, BoundResult, BoundsConfig
from repro.core.constraints import ConstraintConfig, build_constraints
from repro.core.estimator import EstimatorConfig
from repro.core.preprocessor import choose_window_span
from repro.core.records import ArrivalKey, TraceIndex, assemble_arrival_vector
from repro.core.sdr import SdrConfig
from repro.core.validation import (
    ValidationConfig,
    ValidationReport,
    validate_packets,
)
from repro.obs.spans import span
from repro.sim.packet import PacketId
from repro.sim.trace import ReceivedPacket, TraceBundle

FIFO_MODES = ("linearized", "sdr", "none")


def constraint_config_for(
    config: "DomoConfig", report: ValidationReport | None = None
) -> ConstraintConfig:
    """The effective constraint config for one reconstruction run.

    Shared by the batch entry points and the streaming engine so both
    arm the same degradations: ``fifo_mode="none"`` suppresses pair
    resolution via an empty horizon, and detected corruption switches
    on the constraint-level fallbacks (flagged S(p) fields emit no sum
    rows; quarantined packets — known loss — downgrade Eq. (6) to the
    loss-tolerant C*(p)-only Eq. (7) form).
    """
    cfg = config.constraints
    if config.fifo_mode == "none":
        cfg = replace(cfg, fifo_horizon_ms=0.0)
    if report is not None and not report.clean:
        cfg = replace(
            cfg,
            distrusted_sum_ids=frozenset(report.distrusted_sums),
            loss_aware_sums=(
                cfg.loss_aware_sums or report.num_quarantined > 0
            ),
        )
    return cfg


@dataclass
class DomoConfig:
    """All tuning knobs of the reconstruction, with the paper's defaults."""

    #: minimum software processing delay per hop (omega), ms.
    omega_ms: float = 1.0
    #: Eq. (8) pairing horizon (epsilon), ms.
    epsilon_ms: float = 1000.0
    #: paper §IV.B: fraction of each window whose estimates are kept.
    effective_window_ratio: float = 0.5
    #: windows are sized to hold roughly this many packets.
    target_window_packets: int = 60
    #: explicit window span override (ms); None = auto from density.
    window_span_ms: float | None = None
    #: "linearized" (resolved pairs, default), "sdr" (full Eq. (2)-(4)
    #: lift) or "none" (drop FIFO constraints; ablation).
    fifo_mode: str = "linearized"
    #: paper §IV.C: vertices per extracted sub-graph.
    graph_cut_size: int = 10_000
    use_blp: bool = True
    #: solve the independent window subproblems in a process pool. The
    #: result is byte-identical to a serial run; a pool that cannot be
    #: created degrades to serial automatically.
    parallel: bool = False
    #: worker processes for the parallel executor; None = os.cpu_count().
    max_workers: int | None = None
    #: trace-ingestion validation (strict/repair/drop/off). The default
    #: "repair" mode is a no-op on clean traces — estimates stay
    #: byte-identical to the unvalidated pipeline — and quarantines or
    #: distrusts corrupt packets on dirty ones.
    validation: ValidationConfig = field(default_factory=ValidationConfig)
    constraints: ConstraintConfig = field(default_factory=ConstraintConfig)
    estimator: EstimatorConfig = field(default_factory=EstimatorConfig)
    sdr: SdrConfig = field(default_factory=SdrConfig)
    #: estimator backend by registry name: "domo-qp" (the paper's Eq. (8)
    #: QP, default), "cs" (compressed-sensing tomography), or one of the
    #: baselines ("mnt", "message-tracing"). See :mod:`repro.backends`.
    backend: str = DEFAULT_BACKEND
    cs: CsConfig = field(default_factory=CsConfig)
    #: let the degradation ladder re-solve a window with the cheap "cs"
    #: backend when every relaxed re-solve of the configured backend
    #: failed, instead of surrendering straight to interval midpoints.
    backend_downgrade: bool = False

    def __post_init__(self) -> None:
        if self.fifo_mode not in FIFO_MODES:
            raise ValueError(
                f"fifo_mode {self.fifo_mode!r} not in {FIFO_MODES}"
            )
        if self.backend not in backend_names():
            raise ValueError(
                f"backend {self.backend!r} not registered; "
                f"known backends: {', '.join(backend_names())}"
            )
        if self.window_span_ms is not None and self.window_span_ms <= 0.0:
            raise ValueError(
                f"window_span_ms must be positive, got {self.window_span_ms}"
            )
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError(
                f"max_workers must be >= 1, got {self.max_workers}"
            )
        # Propagate the top-level knobs into *copies* of the sub-configs:
        # mutating user-supplied objects in place would cross-contaminate
        # a ConstraintConfig/SdrConfig shared between two DomoConfigs.
        self.constraints = replace(self.constraints, omega_ms=self.omega_ms)
        self.estimator = replace(self.estimator, epsilon_ms=self.epsilon_ms)
        self.sdr = replace(self.sdr, estimator=self.estimator)
        self.validation = replace(self.validation, omega_ms=self.omega_ms)

    def solve_spec(self):
        """The per-window solve spec this config implies.

        Single construction point shared by the streaming engine and the
        serve tier, so every path hands workers the same
        :class:`~repro.runtime.executor.WindowSolveSpec`.
        """
        # Imported here, not at module scope: repro.runtime.executor
        # already builds on repro.backends and would otherwise lengthen
        # this module's import chain for every consumer.
        from repro.runtime.executor import WindowSolveSpec

        return WindowSolveSpec(
            fifo_mode=self.fifo_mode,
            estimator=self.estimator,
            sdr=self.sdr,
            backend=self.backend,
            cs=self.cs,
            allow_backend_downgrade=self.backend_downgrade,
        )


@dataclass
class DelayReconstruction:
    """Estimated per-hop arrival times for a set of packets."""

    #: full arrival-time vectors (index = hop), knowns included.
    arrival_times: dict[PacketId, list[float]]
    #: raw interior estimates by key.
    estimates: dict[ArrivalKey, float]
    windows_used: int = 0
    solve_time_s: float = 0.0
    stats: dict = field(default_factory=dict)

    def delays_of(self, packet_id: PacketId) -> list[float]:
        """Reconstructed per-hop node delays of one packet."""
        times = self.arrival_times[packet_id]
        return [b - a for a, b in zip(times, times[1:])]

    @property
    def num_estimated(self) -> int:
        return len(self.estimates)

    @property
    def time_per_delay_ms(self) -> float:
        """PC-side execution time per reconstructed delay (paper Fig. 9b)."""
        if not self.estimates:
            return 0.0
        return 1000.0 * self.solve_time_s / len(self.estimates)


@dataclass
class BoundReconstruction:
    """Arrival-time bounds plus helpers to read per-hop delay bounds."""

    bounds: dict[ArrivalKey, BoundResult]
    index: TraceIndex
    solve_time_s: float = 0.0
    stats: dict = field(default_factory=dict)

    def arrival_bounds(self, packet_id: PacketId) -> list[tuple[float, float]]:
        """(lower, upper) for every hop of a packet (knowns are points)."""
        packet = self.index.by_id[packet_id]
        result = []
        for hop in range(packet.path_length):
            key = ArrivalKey(packet_id, hop)
            if key in self.bounds:
                entry = self.bounds[key]
                result.append((entry.lower, entry.upper))
            else:
                value = self.index.known_value(key)
                result.append((value, value))
        return result

    def delay_bounds(self, packet_id: PacketId) -> list[tuple[float, float]]:
        """Per-hop delay intervals: D_i in [lo_{i+1}-hi_i, hi_{i+1}-lo_i]."""
        arrivals = self.arrival_bounds(packet_id)
        return [
            (later[0] - earlier[1], later[1] - earlier[0])
            for earlier, later in zip(arrivals, arrivals[1:])
        ]

    def delay_widths(self) -> list[float]:
        """All per-hop delay bound widths (the paper's bound accuracy)."""
        widths = []
        for packet in self.index.packets:
            for lo, hi in self.delay_bounds(packet.packet_id):
                widths.append(hi - lo)
        return widths

    @property
    def time_per_bound_ms(self) -> float:
        """PC-side execution time per bound (paper Fig. 10b)."""
        if not self.bounds:
            return 0.0
        return 1000.0 * self.solve_time_s / len(self.bounds)


class DomoReconstructor:
    """End-to-end PC-side reconstruction (estimates and bounds)."""

    def __init__(self, config: DomoConfig | None = None) -> None:
        self.config = config or DomoConfig()

    # ------------------------------------------------------------------

    @staticmethod
    def _as_packets(trace) -> list[ReceivedPacket]:
        if isinstance(trace, TraceBundle):
            return list(trace.received)
        return list(trace)

    def _prepare(
        self, trace
    ) -> tuple[list[ReceivedPacket], ValidationReport]:
        """Validate the input packets and fold in any ingest-time report.

        In the default ``repair`` mode a clean trace passes through with
        the same objects in the same order, so the hardened pipeline is
        byte-identical to the seed pipeline on clean data.
        """
        packets = self._as_packets(trace)
        packets, report = validate_packets(packets, self.config.validation)
        ingest = getattr(trace, "validation_report", None)
        if isinstance(ingest, ValidationReport):
            report.merge(ingest)
        return packets, report

    def _constraint_config(
        self, report: ValidationReport | None = None
    ) -> ConstraintConfig:
        return constraint_config_for(self.config, report)

    # ------------------------------------------------------------------

    def estimate(self, trace) -> DelayReconstruction:
        """Estimated arrival times via windowed Eq. (8) optimization.

        Runs as "ingest everything, then flush" on the streaming engine
        (:class:`~repro.stream.engine.StreamingReconstructor`): an
        infinite lateness allowance defers every window seal to the
        flush, at which point the engine plans the same window grid over
        the same packet set the batch planner would — so the result is
        identical to the historical batch sweep. With
        ``config.parallel`` the independent window subproblems run on a
        process pool; the merged result is identical to a serial run
        (same solves, merged in window order).
        """
        # Imported here, not at module scope: repro.stream builds on this
        # module, so a top-level import would be circular.
        from repro.stream.engine import StreamingReconstructor

        with span("validate"):
            packets, vreport = self._prepare(trace)
        config = self.config
        started = time.perf_counter()
        with StreamingReconstructor(config, lateness_ms=math.inf) as engine:
            engine.ingest(packets, report=vreport)
            committed = engine.flush()
            stats = engine.stats()
            span_ms = engine.window_span_ms
        estimates: dict[ArrivalKey, float] = {}
        for window in committed:
            estimates.update(window.estimates)
        if span_ms is None:  # empty trace: the grid was never anchored
            span_ms = (
                config.window_span_ms
                if config.window_span_ms is not None
                else choose_window_span(packets, config.target_window_packets)
            )
            stats["window_span_ms"] = span_ms
        elapsed = time.perf_counter() - started

        # Assemble full arrival vectors (fall back to interval midpoints
        # for any unknown not covered by a kept window region). The
        # TraceIndex also re-checks id uniqueness for validation="off".
        with span("assemble"):
            full_index = TraceIndex(packets, omega_ms=config.omega_ms)
            arrival_times: dict[PacketId, list[float]] = {
                packet.packet_id: assemble_arrival_vector(
                    packet, estimates, config.omega_ms
                )
                for packet in full_index.packets
            }
        return DelayReconstruction(
            arrival_times=arrival_times,
            estimates=estimates,
            windows_used=len(committed),
            solve_time_s=elapsed,
            stats=stats,
        )

    # ------------------------------------------------------------------

    def bounds(
        self,
        trace,
        packet_ids: list[PacketId] | None = None,
    ) -> BoundReconstruction:
        """Lower/upper bounds via per-target sub-graph LPs (§IV.C)."""
        with span("validate"):
            packets, vreport = self._prepare(trace)
        config = self.config
        with span("window_build"):
            index = TraceIndex(packets, omega_ms=config.omega_ms)
            system = build_constraints(index, self._constraint_config(vreport))
        computer = BoundComputer(
            system,
            BoundsConfig(
                graph_cut_size=config.graph_cut_size,
                use_blp=config.use_blp,
            ),
        )
        started = time.perf_counter()
        if packet_ids is not None:
            wanted_ids = set(packet_ids)
            keys = [
                key for key in system.variables if key.packet_id in wanted_ids
            ]
        else:
            keys = None
        with span("solve"):
            results: dict[ArrivalKey, BoundResult] = computer.bounds_for_all(
                keys
            )
        elapsed = time.perf_counter() - started
        degraded = system.stats.get("sum_rows_distrusted", 0) + system.stats.get(
            "sum_upper_degraded", 0
        )
        return BoundReconstruction(
            bounds=results,
            index=index,
            solve_time_s=elapsed,
            stats={
                **system.stats,
                **computer.stats,
                "quarantined_packets": vreport.num_quarantined,
                "degraded_constraints": degraded,
                "validation": vreport.as_dict(),
            },
        )
