"""Trace-ingestion validation: quarantine, repair, distrust (robustness tier).

Real deployments hand the PC side dirty traces: time reconstruction can
produce ``t_sink < t0``, the 2-byte S(p) field wraps or saturates, records
get duplicated or truncated in flash, and paths reported by the path
reconstruction layer can be inconsistent. The seed pipeline assumed a
clean trace; this module makes corruption a first-class input.

Three validation modes:

* ``strict`` — any malformed or physically impossible packet raises
  :class:`TraceValidationError` (fail-fast for archival pipelines);
* ``repair`` (default) — wire-impossible field values are clamped into
  range and the affected constraints *distrusted*; impossible records
  (inverted timestamps, looping paths, duplicates) are quarantined;
* ``drop`` — anything suspicious is quarantined outright.

Actions are graded by soundness:

* **quarantine** removes a record entirely — used only when the record is
  wire- or time-impossible (its constraints would poison the solve);
* **distrust** keeps the packet but marks its sum-of-delays field as
  unusable, so constraint building skips its Eq. (6)/(7) rows — always
  sound, it only costs constraint strength;
* **repair** rewrites a field to the nearest legal value (and distrusts
  the result).

The resulting :class:`ValidationReport` is merged into
``DelayReconstruction.stats`` by the pipeline, so every degradation event
is visible to operators. On a clean trace, validation returns the input
list unchanged (same objects, same order) — the hardened pipeline is
byte-identical to the seed pipeline there.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.sim.packet import SUM_OF_DELAYS_MAX_MS
from repro.sim.trace import ReceivedPacket

#: accepted validation modes ("off" bypasses validation entirely).
VALIDATION_MODES = ("off", "strict", "repair", "drop")


class TraceValidationError(ValueError):
    """A trace failed strict validation (message names packet and field)."""


@dataclass
class ValidationConfig:
    """Knobs of trace-ingestion validation."""

    #: "off", "strict", "repair" (default) or "drop".
    mode: str = "repair"
    #: minimum per-hop processing delay used for the timestamp sanity
    #: check ``t_sink >= t0 + (|p|-1) * omega`` (the pipeline overrides
    #: this with its own omega).
    omega_ms: float = 1.0
    #: slack absorbed by S(p) quantization and clock drift, ms.
    sum_slack_ms: float = 2.0
    #: S(p) is flagged as exceeding the end-to-end budget when it is
    #: larger than ``budget_factor * (t_sink(p) - first t0 in trace)``
    #: plus the slack. Sojourn times of co-queued packets overlap, so a
    #: legitimate sum can exceed wall-clock time; the generous factor
    #: keeps false positives out while still catching wrapped/corrupt
    #: accumulators. Distrust is sound either way (only constraint
    #: strength is lost).
    budget_factor: float = 4.0
    #: treat a saturated S(p) == 65535 as untrustworthy (the true sum may
    #: be anything larger).
    distrust_saturated_sum: bool = True

    def __post_init__(self) -> None:
        if self.mode not in VALIDATION_MODES:
            raise ValueError(
                f"validation mode {self.mode!r} not in {VALIDATION_MODES}"
            )


@dataclass(frozen=True)
class ValidationIssue:
    """One detected problem: which packet, which field, what was done."""

    packet_id: object
    field: str
    reason: str
    #: "quarantined", "repaired" or "distrusted".
    action: str

    def as_dict(self) -> dict:
        return {
            "packet_id": str(self.packet_id),
            "field": self.field,
            "reason": self.reason,
            "action": self.action,
        }


@dataclass
class ValidationReport:
    """Outcome of validating one packet collection."""

    mode: str
    total_packets: int = 0
    issues: list[ValidationIssue] = field(default_factory=list)
    #: packet ids removed from the trace.
    quarantined: list = field(default_factory=list)
    #: packet ids whose sum-of-delays constraints must not be emitted.
    distrusted_sums: set = field(default_factory=set)
    #: malformed raw records dropped before packets even existed
    #: (filled by :func:`sanitize_trace_dict`).
    malformed_records: int = 0
    #: truncated final JSONL lines skipped by the tolerant reader — the
    #: torn write a crashed producer leaves at the end of a stream file.
    truncated_lines: int = 0

    @property
    def num_quarantined(self) -> int:
        return len(self.quarantined)

    @property
    def num_distrusted(self) -> int:
        return len(self.distrusted_sums)

    @property
    def clean(self) -> bool:
        return (
            not self.issues
            and self.malformed_records == 0
            and self.truncated_lines == 0
        )

    def reason_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for issue in self.issues:
            counts[issue.reason] = counts.get(issue.reason, 0) + 1
        return counts

    def add(self, packet_id, field_name: str, reason: str, action: str):
        self.issues.append(
            ValidationIssue(packet_id, field_name, reason, action)
        )

    def as_dict(self) -> dict:
        """Flat form merged into ``DelayReconstruction.stats``."""
        return {
            "mode": self.mode,
            "total_packets": self.total_packets,
            "quarantined_packets": self.num_quarantined,
            "distrusted_sums": self.num_distrusted,
            "malformed_records": self.malformed_records,
            "truncated_lines": self.truncated_lines,
            "reason_counts": self.reason_counts(),
        }

    def merge(self, other: "ValidationReport") -> None:
        """Fold another report (e.g. the ingest-time one) into this."""
        self.issues.extend(other.issues)
        self.quarantined.extend(other.quarantined)
        self.distrusted_sums.update(other.distrusted_sums)
        self.malformed_records += other.malformed_records
        self.truncated_lines += other.truncated_lines


# ----------------------------------------------------------------------
# Packet-level validation
# ----------------------------------------------------------------------


def _finite(*values: float) -> bool:
    return all(math.isfinite(v) for v in values)


def _strict(packet_id, field_name: str, reason: str):
    raise TraceValidationError(
        f"packet {packet_id}: field {field_name!r} {reason}"
    )


def validate_packets(
    packets: list[ReceivedPacket],
    config: ValidationConfig | None = None,
    first_t0_ms: float | None = None,
) -> tuple[list[ReceivedPacket], ValidationReport]:
    """Validate a received-packet list per the configured mode.

    Returns the surviving (possibly repaired) packets in their original
    order plus the report. When nothing is wrong the *input objects* are
    returned unchanged, so a clean trace reconstructs byte-identically to
    the unvalidated pipeline.

    Args:
        first_t0_ms: reference start of the trace for the S(p) budget
            check. Defaults to the minimum finite t0 in ``packets``.
            A chunked caller (the streaming engine) passes its running
            prefix-minimum; that is best-effort — a chunk validated
            before the globally smallest t0 has arrived uses a larger
            reference than a single-shot run over the same packets
            would, which is unavoidable for a live stream.
    """
    config = config or ValidationConfig()
    report = ValidationReport(mode=config.mode, total_packets=len(packets))
    if config.mode == "off":
        return list(packets), report

    strict = config.mode == "strict"
    drop = config.mode == "drop"
    first_t0 = (
        first_t0_ms
        if first_t0_ms is not None
        else min(
            (
                p.generation_time_ms
                for p in packets
                if _finite(p.generation_time_ms)
            ),
            default=0.0,
        )
    )
    seen_ids: set = set()
    survivors: list[ReceivedPacket] = []
    for packet in packets:
        pid = packet.packet_id

        # --- record-level impossibilities: quarantine (or raise) -------
        if not _finite(packet.generation_time_ms, packet.sink_arrival_ms):
            if strict:
                _strict(pid, "t0/t_sink", "is not finite")
            report.add(pid, "t0/t_sink", "non_finite_time", "quarantined")
            report.quarantined.append(pid)
            continue
        if len(packet.path) < 2:
            if strict:
                _strict(pid, "path", f"too short ({len(packet.path)} nodes)")
            report.add(pid, "path", "short_path", "quarantined")
            report.quarantined.append(pid)
            continue
        if len(set(packet.path)) != len(packet.path):
            if strict:
                _strict(pid, "path", "revisits a node (routing loop)")
            report.add(pid, "path", "looping_path", "quarantined")
            report.quarantined.append(pid)
            continue
        min_e2e = (packet.path_length - 1) * config.omega_ms
        if packet.sink_arrival_ms - packet.generation_time_ms < min_e2e:
            if strict:
                _strict(
                    pid, "t_sink",
                    f"violates t_sink >= t0 + {min_e2e:g} ms "
                    f"(e2e delay {packet.e2e_delay_ms:g} ms)",
                )
            report.add(pid, "t_sink", "impossible_timestamps", "quarantined")
            report.quarantined.append(pid)
            continue
        if pid in seen_ids:
            if strict:
                _strict(pid, "id", "is duplicated in the trace")
            report.add(pid, "id", "duplicate_id", "quarantined")
            report.quarantined.append(pid)
            continue
        seen_ids.add(pid)

        # --- field-level suspicion: repair + distrust (or drop) --------
        s_value = packet.sum_of_delays_ms
        if s_value < 0 or s_value > SUM_OF_DELAYS_MAX_MS:
            if strict:
                _strict(
                    pid, "sum_of_delays",
                    f"= {s_value} outside the 2-byte range "
                    f"[0, {SUM_OF_DELAYS_MAX_MS}]",
                )
            if drop:
                report.add(pid, "sum_of_delays", "sum_out_of_range",
                           "quarantined")
                report.quarantined.append(pid)
                continue
            clamped = min(SUM_OF_DELAYS_MAX_MS, max(0, s_value))
            packet = replace(packet, sum_of_delays_ms=clamped)
            report.add(pid, "sum_of_delays", "sum_out_of_range", "repaired")
            report.distrusted_sums.add(pid)
        elif (
            config.distrust_saturated_sum
            and s_value == SUM_OF_DELAYS_MAX_MS
        ):
            # A saturated accumulator is a legal wire value, but the true
            # sum may be anything larger — never an error, always distrust.
            report.add(pid, "sum_of_delays", "sum_saturated", "distrusted")
            report.distrusted_sums.add(pid)
        else:
            budget = (
                config.budget_factor
                * max(0.0, packet.sink_arrival_ms - first_t0)
                + config.sum_slack_ms
            )
            if s_value > budget:
                if strict:
                    _strict(
                        pid, "sum_of_delays",
                        f"= {s_value} ms exceeds the end-to-end budget "
                        f"{budget:g} ms (likely 16-bit wraparound)",
                    )
                if drop:
                    report.add(pid, "sum_of_delays", "sum_over_budget",
                               "quarantined")
                    report.quarantined.append(pid)
                    continue
                report.add(pid, "sum_of_delays", "sum_over_budget",
                           "distrusted")
                report.distrusted_sums.add(pid)
        survivors.append(packet)
    return survivors, report


# ----------------------------------------------------------------------
# Raw-record (JSON dict) sanitization
# ----------------------------------------------------------------------

_REQUIRED_RECEIVED_FIELDS = ("id", "path", "t0", "t_sink", "sum_of_delays")


def _received_record_error(item) -> str | None:
    """Why a raw received record cannot be parsed (None when parseable)."""
    if not isinstance(item, dict):
        return f"record is {type(item).__name__}, not an object"
    for name in _REQUIRED_RECEIVED_FIELDS:
        if name not in item:
            return f"missing field {name!r}"
    ident = item["id"]
    if (
        not isinstance(ident, (list, tuple))
        or len(ident) != 2
        or not all(isinstance(part, (int, float)) for part in ident)
    ):
        return f"field 'id' must be a [source, seqno] pair, got {ident!r}"
    if not isinstance(item["path"], (list, tuple)) or not all(
        isinstance(node, (int, float)) for node in item["path"]
    ):
        return "field 'path' must be a list of node ids"
    for name in ("t0", "t_sink", "sum_of_delays"):
        if not isinstance(item[name], (int, float)) or isinstance(
            item[name], bool
        ):
            return f"field {name!r} must be numeric, got {item[name]!r}"
    return None


def _truth_record_error(item) -> str | None:
    if not isinstance(item, dict):
        return f"record is {type(item).__name__}, not an object"
    for name in ("id", "path", "arrivals"):
        if name not in item:
            return f"missing field {name!r}"
    if not isinstance(item["path"], (list, tuple)) or not isinstance(
        item["arrivals"], (list, tuple)
    ):
        return "fields 'path'/'arrivals' must be lists"
    if len(item["path"]) != len(item["arrivals"]):
        return "arrivals do not align with the path"
    if not all(
        isinstance(t, (int, float)) and not isinstance(t, bool)
        for t in item["arrivals"]
    ):
        return "field 'arrivals' must be numeric"
    return None


def sanitize_trace_dict(data: dict) -> tuple[dict, ValidationReport]:
    """Drop malformed raw records so :func:`trace_from_dict` can succeed.

    Used by the tolerant ingestion path (``load_trace(..., validation=)``
    and the fault campaign): truncated or type-corrupted records are
    removed and counted instead of raising. A received record whose
    ground-truth twin was dropped is removed too (scoring alignment).
    """
    report = ValidationReport(mode="repair")
    if not isinstance(data, dict):
        raise TraceValidationError(
            f"trace payload is {type(data).__name__}, not an object"
        )
    cleaned = dict(data)

    good_truth = []
    for item in data.get("ground_truth", []):
        if _truth_record_error(item) is None:
            good_truth.append(item)
        else:
            report.malformed_records += 1
    truth_ids = {tuple(item["id"]) for item in good_truth}

    good_received = []
    for item in data.get("received", []):
        error = _received_record_error(item)
        if error is not None:
            report.malformed_records += 1
            continue
        if tuple(item["id"]) not in truth_ids:
            # No scoring twin: unusable for the evaluation harness and a
            # sign of a truncated archive; drop and count.
            report.malformed_records += 1
            continue
        good_received.append(item)

    cleaned["received"] = good_received
    cleaned["ground_truth"] = good_truth
    node_logs = {}
    for node, log in data.get("node_logs", {}).items():
        entries = [
            entry for entry in log
            if isinstance(entry, (list, tuple)) and len(entry) == 4
        ]
        report.malformed_records += len(log) - len(entries)
        node_logs[node] = entries
    cleaned["node_logs"] = node_logs
    cleaned["lost"] = [
        item for item in data.get("lost", [])
        if isinstance(item, (list, tuple)) and len(item) == 2
    ]
    return cleaned, report
