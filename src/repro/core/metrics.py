"""Accuracy metrics of §VI.A: estimation error, bound width, displacement."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np


@dataclass
class ErrorStats:
    """Summary of a collection of absolute errors (or widths)."""

    values: np.ndarray

    @property
    def count(self) -> int:
        return int(self.values.size)

    @property
    def mean(self) -> float:
        return float(np.mean(self.values)) if self.values.size else float("nan")

    @property
    def median(self) -> float:
        return float(np.median(self.values)) if self.values.size else float("nan")

    def percentile(self, q: float) -> float:
        return float(np.percentile(self.values, q)) if self.values.size else float("nan")

    def fraction_below(self, threshold: float) -> float:
        """CDF value at ``threshold`` (paper: '>70% of errors < 4ms')."""
        if not self.values.size:
            return float("nan")
        return float(np.mean(self.values < threshold))

    def cdf(self, points: int = 50) -> list[tuple[float, float]]:
        """(value, cumulative fraction) pairs for plotting/printing."""
        if not self.values.size:
            return []
        ordered = np.sort(self.values)
        fractions = np.arange(1, ordered.size + 1) / ordered.size
        if ordered.size <= points:
            return list(zip(ordered.tolist(), fractions.tolist()))
        idx = np.linspace(0, ordered.size - 1, points).astype(int)
        return list(zip(ordered[idx].tolist(), fractions[idx].tolist()))


def estimation_error_stats(delay_errors: Sequence[float]) -> ErrorStats:
    """Wrap per-hop delay estimation errors (absolute values taken)."""
    return ErrorStats(np.abs(np.asarray(list(delay_errors), dtype=float)))


def bound_width_stats(widths: Sequence[float]) -> ErrorStats:
    """Wrap per-hop delay bound widths (upper - lower distances)."""
    return ErrorStats(np.asarray(list(widths), dtype=float))


def average_displacement(
    reconstructed: Sequence[Hashable], truth: Sequence[Hashable]
) -> float:
    """The paper's displacement metric for event sequences (§VI.A).

    Both sequences must contain the same elements; the result is the mean
    absolute difference of each element's positions. The paper's example:
    truth (a,b,c,d,e) vs (b,a,e,d,c) gives (1+1+2+0+2)/5 = 1.2.
    """
    if len(reconstructed) != len(truth):
        raise ValueError(
            f"sequences differ in length: {len(reconstructed)} vs {len(truth)}"
        )
    position: dict[Hashable, int] = {}
    for i, item in enumerate(reconstructed):
        if item in position:
            raise ValueError(f"duplicate element {item!r} in reconstruction")
        position[item] = i
    total = 0
    for i, item in enumerate(truth):
        if item not in position:
            raise ValueError(f"element {item!r} missing from reconstruction")
        total += abs(position[item] - i)
    return total / len(truth) if truth else 0.0


def element_displacements(
    reconstructed: Sequence[Hashable], truth: Sequence[Hashable]
) -> np.ndarray:
    """Per-element |position difference| (the CDFs of Fig. 6(c)-8(c)).

    :func:`average_displacement` is the mean of this array.
    """
    if len(reconstructed) != len(truth):
        raise ValueError(
            f"sequences differ in length: {len(reconstructed)} vs {len(truth)}"
        )
    position = {item: i for i, item in enumerate(reconstructed)}
    if len(position) != len(reconstructed):
        raise ValueError("duplicate elements in reconstruction")
    return np.array(
        [abs(position[item] - i) for i, item in enumerate(truth)], dtype=float
    )


def displacement_per_node(
    reconstructed_by_node: dict[int, Sequence[Hashable]],
    truth_by_node: dict[int, Sequence[Hashable]],
) -> ErrorStats:
    """Displacement evaluated per node, pooled (used by Fig. 6(c)-8(c))."""
    values = []
    for node, truth in truth_by_node.items():
        if len(truth) < 2:
            continue
        values.append(
            average_displacement(reconstructed_by_node[node], truth)
        )
    return ErrorStats(np.asarray(values, dtype=float))
