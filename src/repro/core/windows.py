"""The improved overlapping time-window scheme (paper §IV.B, Fig. 3).

Solving one QP over an entire trace is too slow, so Domo splits packets
into time windows by generation time. Estimates near a window's boundary
are under-constrained, so consecutive windows overlap and only the middle
*effective time window ratio* fraction of each window's solution is kept;
the kept regions tile the timeline exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.constants import INF


@dataclass(frozen=True)
class TimeWindow:
    """One window: solve over [start, end), keep [keep_start, keep_end)."""

    start_ms: float
    end_ms: float
    keep_start_ms: float
    keep_end_ms: float

    def contains(self, t0_ms: float) -> bool:
        """Whether a packet generated at ``t0_ms`` is solved in this window."""
        return self.start_ms <= t0_ms < self.end_ms

    def keeps(self, t0_ms: float) -> bool:
        """Whether this window's estimate for the packet is the kept one."""
        return self.keep_start_ms <= t0_ms < self.keep_end_ms


def iter_window_grid(
    t_min: float,
    window_span_ms: float,
    effective_ratio: float = 0.5,
) -> Iterator[TimeWindow]:
    """Infinite generator of nominal windows anchored at ``t_min``.

    Window ``k`` starts at ``t_min - margin + k * stride`` and keeps its
    central ``effective_ratio`` fraction. The start positions are
    accumulated by repeated addition — exactly the arithmetic
    :func:`plan_windows` performs — so the batch planner and the
    streaming engine see bit-identical window boundaries and a packet
    sitting exactly on a boundary lands in the same window either way.

    The nominal grid has no first/last-window fixups: the consumer is
    responsible for widening window 0's keep region down to ``-INF`` and
    the final window's up to ``+INF`` (see :func:`plan_windows`).
    """
    if not 0.0 < effective_ratio <= 1.0:
        raise ValueError(f"effective ratio {effective_ratio} outside (0, 1]")
    if window_span_ms <= 0.0:
        raise ValueError("window span must be positive")
    stride = window_span_ms * effective_ratio
    margin = 0.5 * (window_span_ms - stride)
    start = t_min - margin
    while True:
        keep_start = start + margin
        yield TimeWindow(
            start_ms=start,
            end_ms=start + window_span_ms,
            keep_start_ms=keep_start,
            keep_end_ms=keep_start + stride,
        )
        start += stride


def plan_windows(
    generation_times: Sequence[float],
    window_span_ms: float,
    effective_ratio: float = 0.5,
) -> list[TimeWindow]:
    """Plan overlapping windows covering all generation times.

    Args:
        generation_times: t0 of every packet to reconstruct (any order).
        window_span_ms: width of each solve window.
        effective_ratio: fraction of each window whose estimates are kept
            (the paper's key parameter; it tunes 0.3-0.9 in Fig. 9).

    The kept regions are the central ``effective_ratio`` of each window;
    consecutive windows are strided by exactly that amount so kept regions
    partition the timeline. The first/last windows keep everything down
    to/up from their outer edge (there is no earlier/later window to do
    better).
    """
    if not 0.0 < effective_ratio <= 1.0:
        raise ValueError(f"effective ratio {effective_ratio} outside (0, 1]")
    if window_span_ms <= 0.0:
        raise ValueError("window span must be positive")
    if len(generation_times) == 0:
        return []
    t_min = min(generation_times)
    t_max = max(generation_times)

    windows: list[TimeWindow] = []
    epsilon = 1e-9
    for nominal in iter_window_grid(t_min, window_span_ms, effective_ratio):
        window = TimeWindow(
            start_ms=nominal.start_ms,
            end_ms=nominal.end_ms,
            keep_start_ms=nominal.keep_start_ms if windows else -INF,
            keep_end_ms=nominal.keep_end_ms,
        )
        windows.append(window)
        if nominal.keep_end_ms > t_max + epsilon:
            break
    # The last window keeps its whole tail.
    last = windows[-1]
    windows[-1] = TimeWindow(
        start_ms=last.start_ms,
        end_ms=last.end_ms,
        keep_start_ms=last.keep_start_ms,
        keep_end_ms=INF,
    )
    return windows
