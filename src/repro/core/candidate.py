"""Candidate sets for the sum-of-delays constraints (paper §IV.A).

For a packet ``p`` whose source attached the 2-byte sum ``S(p)``:

* ``C(p)`` — packets whose delay at ``N_0(p)`` *may* be covered by
  ``S(p)``: they pass through ``N_0(p)``, were generated before ``p``, and
  reached the sink after ``q`` (p's previous local packet) was generated.
  Under zero loss, ``S(p) <= D(p) + sum over C(p)`` (Eq. (6)).
* ``C*(p) ⊆ C(p)`` — packets *guaranteed* covered: generated at or after
  ``t_0(q)`` and delivered by ``t_0(p)``. FIFO at the source then forces
  their departure into the accumulator window, so
  ``S(p) >= D(p) + sum over C*(p)`` (Eq. (7)) holds even under loss.

Both sets exclude ``p`` itself (its delay is the explicit ``D`` term) and
``q`` (whose delay was flushed into ``S(q)`` when the accumulator reset).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.records import TraceIndex
from repro.sim.packet import PacketId
from repro.sim.trace import ReceivedPacket


@dataclass
class CandidateSets:
    """C(p) and C*(p) for one packet, plus the anchoring context."""

    packet: ReceivedPacket
    previous_local: ReceivedPacket
    #: (candidate packet, hop at which it visits the source of ``packet``)
    possible: list[tuple[ReceivedPacket, int]] = field(default_factory=list)
    guaranteed: list[tuple[ReceivedPacket, int]] = field(default_factory=list)
    #: True when no local packet was lost between ``previous_local`` and
    #: ``packet`` — only then is the (7) anchor sound.
    anchored: bool = True

    def __post_init__(self) -> None:
        possible_ids = {x.packet_id for x, _ in self.possible}
        for x, _ in self.guaranteed:
            if x.packet_id not in possible_ids:
                raise ValueError("C*(p) must be a subset of C(p)")


def compute_candidate_sets(
    index: TraceIndex, packet: ReceivedPacket
) -> CandidateSets | None:
    """Compute C(p) / C*(p) for ``packet``, or None when unanchorable.

    Returns None when ``packet`` is the first received packet of its
    source (no previous local packet to delimit the accumulator window).
    """
    previous = index.previous_local_packet(packet)
    if previous is None:
        return None
    source = packet.packet_id.source
    t0_p = packet.generation_time_ms
    t0_q = previous.generation_time_ms
    excluded: set[PacketId] = {packet.packet_id, previous.packet_id}

    possible: list[tuple[ReceivedPacket, int]] = []
    guaranteed: list[tuple[ReceivedPacket, int]] = []
    for candidate, hop in index.node_visits.get(source, []):
        if candidate.packet_id in excluded:
            continue
        # Other local packets of the source reset the accumulator when
        # they depart, so their delays are never part of S(p). (With no
        # seqno gap there are none between q and p anyway; earlier/later
        # ones fail the time conditions, but be explicit.)
        if candidate.packet_id.source == source:
            continue
        # Condition 2: generated before p.
        if candidate.generation_time_ms >= t0_p:
            continue
        # Condition 3: delivered after q was generated.
        if candidate.sink_arrival_ms <= t0_q:
            continue
        possible.append((candidate, hop))
        if (
            candidate.generation_time_ms >= t0_q
            and candidate.sink_arrival_ms <= t0_p
        ):
            guaranteed.append((candidate, hop))

    return CandidateSets(
        packet=packet,
        previous_local=previous,
        possible=possible,
        guaranteed=guaranteed,
        anchored=not index.has_seqno_gap(previous, packet),
    )


def loss_evidence(index: TraceIndex) -> int:
    """Number of observable seqno gaps across all source streams.

    A gap between consecutive *received* local packets of one source
    means at least one packet was lost (or quarantined at ingestion).
    Eq. (6) — ``S(p) <= D(p) + sum over C(p)`` — only holds loss-free: a
    lost packet's delay may be inside ``S(p)`` but absent from ``C(p)``.
    The degradation ladder uses this count to decide whether to downgrade
    the sum constraints to the loss-tolerant C*(p)-only form (Eq. (7)).
    """
    sources = {p.packet_id.source for p in index.packets}
    gaps = 0
    for source in sources:
        own = index.local_packets_of(source)
        for previous, packet in zip(own, own[1:]):
            if index.has_seqno_gap(previous, packet):
                gaps += 1
    return gaps
