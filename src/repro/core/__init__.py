"""Domo: per-hop per-packet delay tomography (the paper's contribution).

The PC-side pipeline mirrors §IV of the paper:

1. :mod:`repro.core.records` / :mod:`repro.core.candidate` — index the
   unknown arrival times and compute candidate sets C(p), C*(p);
2. :mod:`repro.core.constraints` — build the three constraint families
   (FIFO, order, sum-of-delays) over the unknowns;
3. :mod:`repro.core.estimator` + :mod:`repro.core.windows` — the Eq. (8)
   minimum-delay-variance estimate, solved per overlapping time window;
4. :mod:`repro.core.sdr` — the faithful semidefinite relaxation of the
   FIFO constraints (Eq. (2)-(4));
5. :mod:`repro.core.bounds` — per-arrival-time lower/upper bounds via LPs
   over extracted sub-graphs;
6. :mod:`repro.core.pipeline` — :class:`DomoReconstructor`, the public API;
7. :mod:`repro.core.metrics` — the paper's accuracy metrics (§VI.A).
"""

from repro.core.candidate import CandidateSets, compute_candidate_sets
from repro.core.constraints import ConstraintSystem, FifoPair, build_constraints
from repro.core.metrics import (
    average_displacement,
    bound_width_stats,
    estimation_error_stats,
)
from repro.core.pipeline import (
    BoundReconstruction,
    DelayReconstruction,
    DomoConfig,
    DomoReconstructor,
)
from repro.core.records import ArrivalKey, TraceIndex
from repro.core.validation import (
    TraceValidationError,
    ValidationConfig,
    ValidationReport,
    validate_packets,
)
from repro.core.windows import TimeWindow, plan_windows

__all__ = [
    "ArrivalKey",
    "BoundReconstruction",
    "CandidateSets",
    "ConstraintSystem",
    "DelayReconstruction",
    "DomoConfig",
    "DomoReconstructor",
    "FifoPair",
    "TimeWindow",
    "TraceIndex",
    "TraceValidationError",
    "ValidationConfig",
    "ValidationReport",
    "average_displacement",
    "bound_width_stats",
    "build_constraints",
    "compute_candidate_sets",
    "estimation_error_stats",
    "plan_windows",
    "validate_packets",
]
