"""Indexing of arrival-time variables over a received trace.

For a packet ``p`` with path length ``|p|`` the sink knows ``t_0(p)``
(generation) and ``t_{|p|-1}(p)`` (sink arrival); the interior arrival
times are the unknowns Domo reconstructs. :class:`TraceIndex` classifies
every ``(packet, hop)`` pair and provides the *trivial interval* each
arrival time must lie in given only the order constraint (Eq. (5)):

    t_0(p) + i*omega  <=  t_i(p)  <=  t_sink(p) - (|p|-1-i)*omega
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterator

from repro.sim.packet import PacketId
from repro.sim.trace import ReceivedPacket


def _packet_order(packet: ReceivedPacket) -> tuple[float, int, int]:
    """Canonical sort key of the index: (t0, source, seqno)."""
    return (
        packet.generation_time_ms,
        packet.packet_id.source,
        packet.packet_id.seqno,
    )


@dataclass(frozen=True, order=True)
class ArrivalKey:
    """Identity of one arrival-time quantity: packet ``p`` at hop ``i``."""

    packet_id: PacketId
    hop: int

    def __str__(self) -> str:
        return f"t[{self.packet_id}@{self.hop}]"


class TraceIndex:
    """Lookup structure over the received packets of one reconstruction.

    Args:
        packets: the received packets to reconstruct (the whole trace or
            one time window).
        omega_ms: the paper's minimum software processing delay per hop.
    """

    def __init__(self, packets: list[ReceivedPacket], omega_ms: float = 1.0):
        if omega_ms < 0:
            raise ValueError("omega must be nonnegative")
        self.omega_ms = omega_ms
        self.packets = sorted(packets, key=_packet_order)
        self.by_id: dict[PacketId, ReceivedPacket] = {
            p.packet_id: p for p in self.packets
        }
        if len(self.by_id) != len(self.packets):
            raise ValueError("duplicate packet ids in trace")
        #: node -> [(packet, hop at which the packet visits the node)]
        self.node_visits: dict[int, list[tuple[ReceivedPacket, int]]] = {}
        #: source -> its received packets in seqno order (bisect lookups).
        self._by_source: dict[int, list[ReceivedPacket]] = {}
        for packet in self.packets:
            self._register(packet)

    def _register(self, packet: ReceivedPacket) -> None:
        """Fold one packet into the derived lookup structures.

        Called in sorted order by the constructor, so plain appends keep
        ``node_visits`` ordered; :meth:`add` inserts out of order and
        restores the invariant with a sorted insert instead.
        """
        for hop, node in enumerate(packet.path[:-1]):
            self.node_visits.setdefault(node, []).append((packet, hop))
        own = self._by_source.setdefault(packet.packet_id.source, [])
        bisect.insort(own, packet, key=lambda p: p.packet_id.seqno)

    def add(self, packet: ReceivedPacket) -> None:
        """Incrementally insert one packet, preserving sorted order.

        The streaming ingest path: a sorted insert plus bisect-maintained
        per-source/per-node structures, so an index grown packet by packet
        is indistinguishable from one built from the full list at once.
        """
        if packet.packet_id in self.by_id:
            raise ValueError(f"duplicate packet id {packet.packet_id}")
        bisect.insort(self.packets, packet, key=_packet_order)
        self.by_id[packet.packet_id] = packet
        key = _packet_order(packet)
        for hop, node in enumerate(packet.path[:-1]):
            visits = self.node_visits.setdefault(node, [])
            # Visits stay ordered by (t0, source, seqno, hop) — the order
            # the constructor produces — so pair enumeration is identical
            # however the index was grown.
            position = bisect.bisect_left(
                visits, (*key, hop), key=lambda v: (*_packet_order(v[0]), v[1])
            )
            visits.insert(position, (packet, hop))
        own = self._by_source.setdefault(packet.packet_id.source, [])
        bisect.insort(own, packet, key=lambda p: p.packet_id.seqno)

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------

    def is_known(self, key: ArrivalKey) -> bool:
        """Whether the sink directly knows this arrival time."""
        packet = self.by_id[key.packet_id]
        return key.hop == 0 or key.hop == packet.path_length - 1

    def known_value(self, key: ArrivalKey) -> float:
        """The value of a known arrival time (KeyError-style errors)."""
        packet = self.by_id[key.packet_id]
        if key.hop == 0:
            return packet.generation_time_ms
        if key.hop == packet.path_length - 1:
            return packet.sink_arrival_ms
        raise ValueError(f"{key} is unknown")

    def unknown_keys(self) -> Iterator[ArrivalKey]:
        """All interior arrival times, in deterministic order."""
        for packet in self.packets:
            for hop in range(1, packet.path_length - 1):
                yield ArrivalKey(packet.packet_id, hop)

    def keys_of(self, packet: ReceivedPacket) -> list[ArrivalKey]:
        """All arrival-time keys of one packet (known and unknown)."""
        return [
            ArrivalKey(packet.packet_id, hop)
            for hop in range(packet.path_length)
        ]

    # ------------------------------------------------------------------
    # Trivial intervals
    # ------------------------------------------------------------------

    def trivial_interval(self, key: ArrivalKey) -> tuple[float, float]:
        """The order-constraint interval of an arrival time (Eq. (5))."""
        packet = self.by_id[key.packet_id]
        if not 0 <= key.hop < packet.path_length:
            raise ValueError(f"hop {key.hop} outside path of {packet.packet_id}")
        low = packet.generation_time_ms + key.hop * self.omega_ms
        high = packet.sink_arrival_ms - (
            packet.path_length - 1 - key.hop
        ) * self.omega_ms
        if self.is_known(key):
            value = self.known_value(key)
            return value, value
        return low, high

    def value_or_interval(self, key: ArrivalKey) -> tuple[float, float]:
        """Alias of :meth:`trivial_interval` (knowns collapse to a point)."""
        return self.trivial_interval(key)

    # ------------------------------------------------------------------
    # Per-source structure (used by candidate sets)
    # ------------------------------------------------------------------

    def local_packets_of(self, node: int) -> list[ReceivedPacket]:
        """Received packets generated *by* ``node``, in seqno order."""
        return list(self._by_source.get(node, []))

    def previous_local_packet(
        self, packet: ReceivedPacket
    ) -> ReceivedPacket | None:
        """The previous *received* local packet from the same source.

        Returns None when ``packet`` is its source's first received packet.
        The caller must check :meth:`has_seqno_gap` before trusting
        sum-of-delays constraints built on this pair.
        """
        own = self._by_source.get(packet.packet_id.source, [])
        index = bisect.bisect_left(
            own, packet.packet_id.seqno, key=lambda p: p.packet_id.seqno
        )
        if index >= len(own) or own[index].packet_id != packet.packet_id:
            raise ValueError(f"{packet.packet_id} is not in this index")
        return own[index - 1] if index > 0 else None

    def has_seqno_gap(
        self, previous: ReceivedPacket, packet: ReceivedPacket
    ) -> bool:
        """Whether a local packet between the two was lost.

        A gap means the lost packet may have flushed the sum-of-delays
        accumulator on the node, so Eq. (6)/(7) cannot be anchored to
        ``previous`` soundly.
        """
        return packet.packet_id.seqno != previous.packet_id.seqno + 1


def assemble_arrival_vector(
    packet: ReceivedPacket,
    estimates: dict[ArrivalKey, float],
    omega_ms: float,
) -> list[float]:
    """One packet's full arrival-time vector (index = hop).

    Knowns (t0, sink arrival) are taken from the packet; interior hops
    come from ``estimates`` and fall back to the Eq. (5) trivial-interval
    midpoint when no kept window covered them. Only per-packet quantities
    enter, so the batch pipeline and the streaming engine assemble
    bit-identical vectors from the same estimates.
    """
    last = packet.path_length - 1
    times: list[float] = []
    for hop in range(packet.path_length):
        if hop == 0:
            times.append(packet.generation_time_ms)
        elif hop == last:
            times.append(packet.sink_arrival_ms)
        else:
            key = ArrivalKey(packet.packet_id, hop)
            value = estimates.get(key)
            if value is None:
                low = packet.generation_time_ms + hop * omega_ms
                high = packet.sink_arrival_ms - (last - hop) * omega_ms
                value = 0.5 * (low + high)
            times.append(value)
    return times
