"""Indexing of arrival-time variables over a received trace.

For a packet ``p`` with path length ``|p|`` the sink knows ``t_0(p)``
(generation) and ``t_{|p|-1}(p)`` (sink arrival); the interior arrival
times are the unknowns Domo reconstructs. :class:`TraceIndex` classifies
every ``(packet, hop)`` pair and provides the *trivial interval* each
arrival time must lie in given only the order constraint (Eq. (5)):

    t_0(p) + i*omega  <=  t_i(p)  <=  t_sink(p) - (|p|-1-i)*omega
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.sim.packet import PacketId
from repro.sim.trace import ReceivedPacket


@dataclass(frozen=True, order=True)
class ArrivalKey:
    """Identity of one arrival-time quantity: packet ``p`` at hop ``i``."""

    packet_id: PacketId
    hop: int

    def __str__(self) -> str:
        return f"t[{self.packet_id}@{self.hop}]"


class TraceIndex:
    """Lookup structure over the received packets of one reconstruction.

    Args:
        packets: the received packets to reconstruct (the whole trace or
            one time window).
        omega_ms: the paper's minimum software processing delay per hop.
    """

    def __init__(self, packets: list[ReceivedPacket], omega_ms: float = 1.0):
        if omega_ms < 0:
            raise ValueError("omega must be nonnegative")
        self.omega_ms = omega_ms
        self.packets = sorted(
            packets,
            key=lambda p: (p.generation_time_ms, p.packet_id.source,
                           p.packet_id.seqno),
        )
        self.by_id: dict[PacketId, ReceivedPacket] = {
            p.packet_id: p for p in self.packets
        }
        if len(self.by_id) != len(self.packets):
            raise ValueError("duplicate packet ids in trace")
        #: node -> [(packet, hop at which the packet visits the node)]
        self.node_visits: dict[int, list[tuple[ReceivedPacket, int]]] = {}
        for packet in self.packets:
            for hop, node in enumerate(packet.path[:-1]):
                self.node_visits.setdefault(node, []).append((packet, hop))

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------

    def is_known(self, key: ArrivalKey) -> bool:
        """Whether the sink directly knows this arrival time."""
        packet = self.by_id[key.packet_id]
        return key.hop == 0 or key.hop == packet.path_length - 1

    def known_value(self, key: ArrivalKey) -> float:
        """The value of a known arrival time (KeyError-style errors)."""
        packet = self.by_id[key.packet_id]
        if key.hop == 0:
            return packet.generation_time_ms
        if key.hop == packet.path_length - 1:
            return packet.sink_arrival_ms
        raise ValueError(f"{key} is unknown")

    def unknown_keys(self) -> Iterator[ArrivalKey]:
        """All interior arrival times, in deterministic order."""
        for packet in self.packets:
            for hop in range(1, packet.path_length - 1):
                yield ArrivalKey(packet.packet_id, hop)

    def keys_of(self, packet: ReceivedPacket) -> list[ArrivalKey]:
        """All arrival-time keys of one packet (known and unknown)."""
        return [
            ArrivalKey(packet.packet_id, hop)
            for hop in range(packet.path_length)
        ]

    # ------------------------------------------------------------------
    # Trivial intervals
    # ------------------------------------------------------------------

    def trivial_interval(self, key: ArrivalKey) -> tuple[float, float]:
        """The order-constraint interval of an arrival time (Eq. (5))."""
        packet = self.by_id[key.packet_id]
        if not 0 <= key.hop < packet.path_length:
            raise ValueError(f"hop {key.hop} outside path of {packet.packet_id}")
        low = packet.generation_time_ms + key.hop * self.omega_ms
        high = packet.sink_arrival_ms - (
            packet.path_length - 1 - key.hop
        ) * self.omega_ms
        if self.is_known(key):
            value = self.known_value(key)
            return value, value
        return low, high

    def value_or_interval(self, key: ArrivalKey) -> tuple[float, float]:
        """Alias of :meth:`trivial_interval` (knowns collapse to a point)."""
        return self.trivial_interval(key)

    # ------------------------------------------------------------------
    # Per-source structure (used by candidate sets)
    # ------------------------------------------------------------------

    def local_packets_of(self, node: int) -> list[ReceivedPacket]:
        """Received packets generated *by* ``node``, in seqno order."""
        own = [p for p in self.packets if p.packet_id.source == node]
        own.sort(key=lambda p: p.packet_id.seqno)
        return own

    def previous_local_packet(
        self, packet: ReceivedPacket
    ) -> ReceivedPacket | None:
        """The previous *received* local packet from the same source.

        Returns None when ``packet`` is its source's first received packet.
        The caller must check :meth:`has_seqno_gap` before trusting
        sum-of-delays constraints built on this pair.
        """
        own = self.local_packets_of(packet.packet_id.source)
        index = next(
            i for i, p in enumerate(own) if p.packet_id == packet.packet_id
        )
        return own[index - 1] if index > 0 else None

    def has_seqno_gap(
        self, previous: ReceivedPacket, packet: ReceivedPacket
    ) -> bool:
        """Whether a local packet between the two was lost.

        A gap means the lost packet may have flushed the sum-of-delays
        accumulator on the node, so Eq. (6)/(7) cannot be anchored to
        ``previous`` soundly.
        """
        return packet.packet_id.seqno != previous.packet_id.seqno + 1
