"""Trace preprocessing: raw sink trace -> per-window constraint systems.

This is the reproduction of the paper's PC-side "data preprocessor"
(§V — theirs was Perl): it partitions the received packets into the
overlapping time windows of §IV.B and assembles one
:class:`~repro.core.constraints.ConstraintSystem` per window, ready for
the estimation or SDR optimizers.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

from repro.core.constraints import (
    ConstraintConfig,
    ConstraintSystem,
    build_constraints,
)
from repro.core.records import TraceIndex
from repro.core.windows import TimeWindow, plan_windows
from repro.sim.packet import PacketId
from repro.sim.trace import ReceivedPacket


@dataclass
class WindowSystem:
    """One window's packets, constraints and the ids whose estimates count."""

    window: TimeWindow
    index: TraceIndex
    system: ConstraintSystem
    kept_ids: set[PacketId]

    @property
    def num_packets(self) -> int:
        """Packets whose constraints entered this window's system."""
        return len(self.index.packets)

    @property
    def num_unknowns(self) -> int:
        """Unknown arrival times this window solves for."""
        return self.system.num_unknowns


def choose_window_span(
    packets: list[ReceivedPacket],
    target_window_packets: int,
    minimum_span_ms: float = 1_000.0,
    periods_per_window: float = 3.0,
) -> float:
    """A window span that balances solver size against constraint richness.

    Two requirements pull in opposite directions: windows should hold only
    about ``target_window_packets`` packets (QP size), but they must span
    several per-source generation periods — otherwise a packet's previous
    local packet falls outside the window and the sum-of-delays
    constraints (the strongest anchors Domo has) cannot be built.
    """
    if not packets:
        return minimum_span_ms
    t0s = [p.generation_time_ms for p in packets]
    duration = max(t0s) - min(t0s)
    if duration <= 0.0 or len(packets) <= target_window_packets:
        return max(minimum_span_ms, duration + 1.0)
    density = len(packets) / duration  # packets per ms
    span = target_window_packets / density

    gaps: list[float] = []
    by_source: dict[int, list[float]] = {}
    for p in packets:
        by_source.setdefault(p.packet_id.source, []).append(
            p.generation_time_ms
        )
    for times in by_source.values():
        times.sort()
        gaps.extend(b - a for a, b in zip(times, times[1:]))
    if gaps:
        span = max(span, periods_per_window * float(np.median(gaps)))
    return min(max(minimum_span_ms, span), duration + 1.0)


def generation_order(packets: list[ReceivedPacket]) -> list[ReceivedPacket]:
    """Packets sorted by (t0, source, seqno) — the canonical sweep order."""
    return sorted(
        packets,
        key=lambda p: (
            p.generation_time_ms,
            p.packet_id.source,
            p.packet_id.seqno,
        ),
    )


def make_window_system(
    window: TimeWindow,
    members: list[ReceivedPacket],
    kept_ids: set[PacketId],
    constraint_config: ConstraintConfig,
) -> WindowSystem:
    """Assemble one window's constraint system from its member packets.

    Shared between the batch sweep below and the streaming engine's
    seal step, so both paths build byte-identical systems for the same
    membership.
    """
    index = TraceIndex(members, omega_ms=constraint_config.omega_ms)
    system = build_constraints(index, constraint_config)
    return WindowSystem(
        window=window, index=index, system=system, kept_ids=kept_ids
    )


def build_window_systems(
    packets: list[ReceivedPacket],
    constraint_config: ConstraintConfig,
    window_span_ms: float,
    effective_ratio: float = 0.5,
) -> list[WindowSystem]:
    """Partition packets into overlapping windows and build each system.

    Windows with no packets are skipped; each packet's estimate is *kept*
    from exactly one window (the one whose keep region covers its t0).

    Membership is assigned with a single sort followed by a bisect sweep
    over window boundaries — O(n log n + w log n) — instead of rescanning
    every packet for every window. Output is independent of the input
    order: ties on t0 are broken by packet id, and the per-window
    :class:`TraceIndex` sorts its members anyway.
    """
    if not packets:
        return []
    ordered = generation_order(packets)
    t0s = [p.generation_time_ms for p in ordered]
    windows = plan_windows(t0s, window_span_ms, effective_ratio)
    systems: list[WindowSystem] = []
    for window in windows:
        # Half-open [start, end) membership == bisect_left boundaries;
        # -INF/INF keep fixups degenerate to the member range itself.
        lo = bisect.bisect_left(t0s, window.start_ms)
        hi = bisect.bisect_left(t0s, window.end_ms, lo)
        if lo == hi:
            continue
        members = ordered[lo:hi]
        keep_lo = bisect.bisect_left(t0s, window.keep_start_ms, lo, hi)
        keep_hi = bisect.bisect_left(t0s, window.keep_end_ms, lo, hi)
        kept = {p.packet_id for p in ordered[keep_lo:keep_hi]}
        if not kept:
            continue
        systems.append(
            make_window_system(window, members, kept, constraint_config)
        )
    return systems
