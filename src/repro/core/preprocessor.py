"""Trace preprocessing: raw sink trace -> per-window constraint systems.

This is the reproduction of the paper's PC-side "data preprocessor"
(§V — theirs was Perl): it partitions the received packets into the
overlapping time windows of §IV.B and assembles one
:class:`~repro.core.constraints.ConstraintSystem` per window, ready for
the estimation or SDR optimizers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.constraints import (
    ConstraintConfig,
    ConstraintSystem,
    build_constraints,
)
from repro.core.records import TraceIndex
from repro.core.windows import TimeWindow, plan_windows
from repro.sim.packet import PacketId
from repro.sim.trace import ReceivedPacket


@dataclass
class WindowSystem:
    """One window's packets, constraints and the ids whose estimates count."""

    window: TimeWindow
    index: TraceIndex
    system: ConstraintSystem
    kept_ids: set[PacketId]

    @property
    def num_packets(self) -> int:
        """Packets whose constraints entered this window's system."""
        return len(self.index.packets)

    @property
    def num_unknowns(self) -> int:
        """Unknown arrival times this window solves for."""
        return self.system.num_unknowns


def choose_window_span(
    packets: list[ReceivedPacket],
    target_window_packets: int,
    minimum_span_ms: float = 1_000.0,
    periods_per_window: float = 3.0,
) -> float:
    """A window span that balances solver size against constraint richness.

    Two requirements pull in opposite directions: windows should hold only
    about ``target_window_packets`` packets (QP size), but they must span
    several per-source generation periods — otherwise a packet's previous
    local packet falls outside the window and the sum-of-delays
    constraints (the strongest anchors Domo has) cannot be built.
    """
    if not packets:
        return minimum_span_ms
    t0s = [p.generation_time_ms for p in packets]
    duration = max(t0s) - min(t0s)
    if duration <= 0.0 or len(packets) <= target_window_packets:
        return max(minimum_span_ms, duration + 1.0)
    density = len(packets) / duration  # packets per ms
    span = target_window_packets / density

    gaps: list[float] = []
    by_source: dict[int, list[float]] = {}
    for p in packets:
        by_source.setdefault(p.packet_id.source, []).append(
            p.generation_time_ms
        )
    for times in by_source.values():
        times.sort()
        gaps.extend(b - a for a, b in zip(times, times[1:]))
    if gaps:
        span = max(span, periods_per_window * float(np.median(gaps)))
    return min(max(minimum_span_ms, span), duration + 1.0)


def build_window_systems(
    packets: list[ReceivedPacket],
    constraint_config: ConstraintConfig,
    window_span_ms: float,
    effective_ratio: float = 0.5,
) -> list[WindowSystem]:
    """Partition packets into overlapping windows and build each system.

    Windows with no packets are skipped; each packet's estimate is *kept*
    from exactly one window (the one whose keep region covers its t0).
    """
    if not packets:
        return []
    t0s = [p.generation_time_ms for p in packets]
    windows = plan_windows(t0s, window_span_ms, effective_ratio)
    systems: list[WindowSystem] = []
    for window in windows:
        members = [p for p in packets if window.contains(p.generation_time_ms)]
        if not members:
            continue
        kept = {
            p.packet_id
            for p in members
            if window.keeps(p.generation_time_ms)
        }
        if not kept:
            continue
        index = TraceIndex(members, omega_ms=constraint_config.omega_ms)
        system = build_constraints(index, constraint_config)
        systems.append(
            WindowSystem(window=window, index=index, system=system, kept_ids=kept)
        )
    return systems
