"""Faithful semidefinite relaxation of the FIFO constraints (Eq. (2)-(4)).

Eq. (1) is a product of two affine forms of the arrival times. The paper
lifts the arrival-time vector ``u`` to a matrix ``U`` standing in for
``u u'``: each product constraint becomes *linear* in ``(u, U)``
(``Tr(P U) >= 0``), and the rank-one equality is relaxed to the PSD
Schur-complement block ``[[U, u], [u', 1]] >= 0``. (The paper's Eq. (4)
prints the block with a flipped inequality sign; the standard — and only
convex — form is PSD, which is what we implement.)

The Eq. (8) objective is also quadratic in ``u``, so after the lift the
whole estimation problem is one SDP per window, solved by
:func:`repro.optim.sdp.solve_sdp`. The lift costs O(n^2) extra variables,
so this path is intended for modest windows; the pipeline's default
``fifo_mode="linearized"`` avoids the lift for large traces, and the
ablation benchmark compares the two.

RLT tightening: for every unknown with interval ``[lo, hi]`` we add
``(u - lo)(hi - u) >= 0`` lifted, i.e. ``-U_ii + (lo+hi) u_i >= lo*hi``,
which substantially tightens the relaxation at negligible cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.constants import INF
from repro.core.constraints import ConstraintSystem
from repro.backends.domo_qp import EstimatorConfig, enumerate_pairs, _linear_form
from repro.core.records import ArrivalKey
from repro.optim.result import SolverError, SolverResult
from repro.optim.sdp import PSDBlock, SDPProblem, SDPSettings, solve_sdp


@dataclass
class SdrConfig:
    """Knobs of the lifted solve."""

    #: refuse to lift windows with more unknowns than this (O(n^2) memory).
    max_unknowns: int = 80
    #: strict-inequality margin for the lifted FIFO products, ms^2.
    product_margin: float = 0.0
    #: add the RLT interval products (strongly recommended).
    use_rlt: bool = True
    estimator: EstimatorConfig = field(default_factory=EstimatorConfig)
    sdp: SDPSettings = field(default_factory=SDPSettings)


class _LiftIndex:
    """Column layout of the lifted variable x = [u ; svec(U)]."""

    def __init__(self, n: int) -> None:
        self.n = n
        self._pair_offset: dict[tuple[int, int], int] = {}
        offset = n
        for i in range(n):
            for j in range(i, n):
                self._pair_offset[(i, j)] = offset
                offset += 1
        self.total = offset

    def u(self, i: int) -> int:
        return i

    def U(self, i: int, j: int) -> int:
        if i > j:
            i, j = j, i
        return self._pair_offset[(i, j)]


def solve_window_sdr(
    system: ConstraintSystem, config: SdrConfig | None = None
) -> dict[ArrivalKey, float]:
    """Estimate a window's unknown arrival times via the full SDR lift."""
    solution, _ = solve_window_sdr_info(system, config)
    return solution


def solve_window_sdr_info(
    system: ConstraintSystem, config: SdrConfig | None = None
) -> tuple[dict[ArrivalKey, float], SolverResult | None]:
    """Like :func:`solve_window_sdr`, also returning the SDP solver result.

    The second element carries iteration counts, residuals and solve time
    for telemetry; it is ``None`` for the trivial zero-unknown window.
    """
    solution, _, _, _, result = _solve_lifted(system, config or SdrConfig())
    return solution, result


def sdr_bounds(
    system: ConstraintSystem,
    key: ArrivalKey,
    config: SdrConfig | None = None,
) -> tuple[float, float]:
    """Bounds of one arrival time over the *SDR* feasible set (§IV.C).

    The paper's bound problems "consider the three kinds of constraints",
    i.e. including the relaxed FIFO products; this solves
    ``min t`` / ``max t`` over the lifted set (linear rows + RLT + PSD),
    which is at least as tight as the pure-LP bounds whenever unresolved
    FIFO pairs touch the target. Intended for small systems (the lift is
    O(n^2)); the production path remains the LP in
    :mod:`repro.core.bounds`.
    """
    config = config or SdrConfig()
    column = system.variables.get(key)
    if column is None:
        value = system.index.known_value(key)
        return value, value
    n = system.num_unknowns
    objective = np.zeros(n)
    objective[column] = 1.0
    low, _, _, _, _ = _solve_lifted(system, config, objective=objective)
    high, _, _, _, _ = _solve_lifted(system, config, objective=-objective)
    lo_interval, hi_interval = system.intervals[key]
    lower = max(low[key], lo_interval)
    upper = min(high[key], hi_interval)
    if lower > upper:  # solver tolerance: fall back to the interval
        return lo_interval, hi_interval
    return lower, upper


def _solve_lifted(
    system: ConstraintSystem,
    config: SdrConfig,
    objective: np.ndarray | None = None,
) -> tuple[
    dict[ArrivalKey, float],
    np.ndarray,
    np.ndarray,
    tuple[float, float],
    SolverResult | None,
]:
    """Run the lifted solve; also return (u, U), the (t_ref, scale) frame
    and the raw :class:`SolverResult` (``None`` when nothing was solved).

    ``objective`` (a vector over the unknowns) replaces the Eq. (8)
    objective when given — used by :func:`sdr_bounds` for min/max of a
    single arrival time.
    """
    n = system.num_unknowns
    if n == 0:
        return {}, np.zeros(0), np.zeros((0, 0)), (0.0, 1.0), None
    if n > config.max_unknowns:
        raise ValueError(
            f"window has {n} unknowns > SDR cap {config.max_unknowns}; "
            "shrink the window or use fifo_mode='linearized'"
        )

    lows, highs = system.variable_bounds()
    lows = np.asarray(lows)
    highs = np.asarray(highs)
    t_ref = float(np.min(lows))
    # Normalize times into ~[0, 1]: the lifted U entries are quadratic in
    # u, so without scaling the ADMM iteration is badly conditioned.
    scale = max(1.0, float(np.max(highs - t_ref)))
    lo = (lows - t_ref) / scale
    hi = (highs - t_ref) / scale
    mid = 0.5 * (lo + hi)

    lift = _LiftIndex(n)
    total = lift.total

    rows: list[dict[int, float]] = []
    row_lower: list[float] = []
    row_upper: list[float] = []

    def add_row(coeffs: dict[int, float], lower=-INF, upper=INF):
        rows.append(coeffs)
        row_lower.append(lower)
        row_upper.append(upper)

    # --- linear rows from the constraint builder (over u only) --------
    A_rows, b_lower, b_upper = system.builder.build(num_variables=n)
    shift = np.asarray(A_rows @ np.ones(n)).ravel() * t_ref
    A_csr = A_rows.tocsr()
    for r in range(A_csr.shape[0]):
        start, stop = A_csr.indptr[r], A_csr.indptr[r + 1]
        coeffs = {
            int(c): float(v)
            for c, v in zip(A_csr.indices[start:stop], A_csr.data[start:stop])
        }
        lower = (b_lower[r] - shift[r]) / scale if np.isfinite(b_lower[r]) else -INF
        upper = (b_upper[r] - shift[r]) / scale if np.isfinite(b_upper[r]) else INF
        add_row(coeffs, lower, upper)

    # --- interval box on u --------------------------------------------
    for i in range(n):
        add_row({lift.u(i): 1.0}, lo[i], hi[i])

    # --- lifted FIFO products (Eq. (2)-(3)) ----------------------------
    for pair in system.fifo_unresolved:
        _add_lifted_product(system, lift, add_row, pair, t_ref, scale, config)

    # --- RLT interval products -----------------------------------------
    if config.use_rlt:
        for i in range(n):
            add_row(
                {lift.U(i, i): -1.0, lift.u(i): lo[i] + hi[i]},
                lower=lo[i] * hi[i],
            )

    # --- objective: Eq. (8) lifted + midpoint anchor, or an override ----
    q = np.zeros(total)
    if objective is not None:
        q[:n] = np.asarray(objective, dtype=float)
    else:
        for _, x_at, x_next, y_at, y_next in enumerate_pairs(
            system, config.estimator
        ):
            form = {x_next: 1.0, x_at: -1.0, y_next: -1.0, y_at: 1.0}
            columns, coefficients, constant = _linear_form(
                system, form, t_ref, scale
            )
            if not columns:
                continue
            for ci, ai in zip(columns, coefficients):
                q[lift.u(ci)] += 2.0 * constant * ai
            for idx_i, (ci, ai) in enumerate(zip(columns, coefficients)):
                for cj, aj in list(zip(columns, coefficients))[idx_i:]:
                    if ci == cj:
                        q[lift.U(ci, ci)] += ai * aj
                    else:
                        q[lift.U(ci, cj)] += 2.0 * ai * aj
        lam = config.estimator.anchor_weight
        for i in range(n):
            q[lift.U(i, i)] += lam
            q[lift.u(i)] += -2.0 * lam * mid[i]

    # --- PSD block [[U, u], [u', 1]] ------------------------------------
    dim = n + 1
    C = sp.lil_matrix((dim * dim, total))
    d = np.zeros(dim * dim)
    for i in range(n):
        for j in range(n):
            C[i * dim + j, lift.U(i, j)] = 1.0
        C[i * dim + n, lift.u(i)] = 1.0
        C[n * dim + i, lift.u(i)] = 1.0
    d[n * dim + n] = 1.0
    block = PSDBlock(dim=dim, C=sp.csr_matrix(C), d=d)

    # --- assemble and solve ---------------------------------------------
    data, row_ids, col_ids = [], [], []
    for r, coeffs in enumerate(rows):
        for c, v in coeffs.items():
            row_ids.append(r)
            col_ids.append(c)
            data.append(v)
    A = sp.csr_matrix((data, (row_ids, col_ids)), shape=(len(rows), total))
    problem = SDPProblem(
        P=sp.csc_matrix((total, total)),
        q=q,
        A=A,
        lower=np.array(row_lower),
        upper=np.array(row_upper),
        psd_blocks=[block],
        settings=config.sdp,
    )
    result = solve_sdp(problem)
    if not result.status.is_usable:
        raise SolverError(result.status, "SDR window solve failed")
    u = result.x[:n]
    U = np.empty((n, n))
    for i in range(n):
        for j in range(i, n):
            U[i, j] = U[j, i] = result.x[lift.U(i, j)]
    solution_vec = u * scale + t_ref
    solution = {
        key: float(solution_vec[system.variables.index_of(key)])
        for key in system.variables
    }
    return solution, u, U, (t_ref, scale), result


def solve_window_sdr_randomized(
    system: ConstraintSystem,
    config: SdrConfig | None = None,
    num_samples: int = 50,
    rng: np.random.Generator | None = None,
) -> dict[ArrivalKey, float]:
    """SDR + Gaussian randomized rounding (d'Aspremont & Boyd, ref. [21]).

    The relaxation's ``(u, U)`` define a Gaussian ``N(u, U - u u')`` whose
    second moment matches the lifted solution. Samples are drawn, repaired
    to satisfy the box and order constraints, scored by the true Eq. (8)
    objective plus the linear-constraint violation, and the best candidate
    (the mean solution included) wins. This implements the randomization
    step the paper's SDR reference describes but Domo itself leaves out.
    """
    config = config or SdrConfig()
    rng = rng or np.random.default_rng()
    mean_solution, u, U, (t_ref, scale), _ = _solve_lifted(system, config)
    n = system.num_unknowns
    if n == 0:
        return {}

    covariance = U - np.outer(u, u)
    # Numerical cleanup: the relaxation guarantees PSD only up to solver
    # tolerance.
    eigenvalues, eigenvectors = np.linalg.eigh(0.5 * (covariance + covariance.T))
    root = eigenvectors * np.sqrt(np.clip(eigenvalues, 0.0, None))

    lows, highs = system.variable_bounds()
    lows = np.asarray(lows)
    highs = np.asarray(highs)

    candidates = [np.array([mean_solution[key] for key in system.variables])]
    for _ in range(num_samples):
        z = u + root @ rng.normal(size=n)
        candidates.append(np.clip(z * scale + t_ref, lows, highs))

    best = None
    best_score = np.inf
    for candidate in candidates:
        repaired = _repair_order(system, candidate)
        score = _true_objective(system, repaired) + 10.0 * _violation(
            system, repaired
        )
        if score < best_score:
            best_score = score
            best = repaired
    assert best is not None
    return {
        key: float(best[system.variables.index_of(key)])
        for key in system.variables
    }


def _repair_order(system: ConstraintSystem, x: np.ndarray) -> np.ndarray:
    """Force each packet's interior times into monotone order (Eq. (5))."""
    repaired = x.copy()
    omega = system.index.omega_ms
    for packet in system.index.packets:
        previous = packet.generation_time_ms
        for hop in range(1, packet.path_length - 1):
            column = system.variables.get(ArrivalKey(packet.packet_id, hop))
            if column is None:
                continue
            ceiling = packet.sink_arrival_ms - (
                packet.path_length - 1 - hop
            ) * omega
            value = min(max(repaired[column], previous + omega), ceiling)
            repaired[column] = value
            previous = value
    return repaired


def _true_objective(system: ConstraintSystem, x: np.ndarray) -> float:
    """The unrelaxed Eq. (8) objective at a candidate point."""
    total = 0.0
    estimator_config = EstimatorConfig()
    for _, x_at, x_next, y_at, y_next in enumerate_pairs(
        system, estimator_config
    ):
        form = {x_next: 1.0, x_at: -1.0, y_next: -1.0, y_at: 1.0}
        value = 0.0
        for key, coefficient in form.items():
            column = system.variables.get(key)
            if column is None:
                value += coefficient * system.index.known_value(key)
            else:
                value += coefficient * x[column]
        total += value * value
    return total


def _violation(system: ConstraintSystem, x: np.ndarray) -> float:
    """Total violation of the linear rows at a candidate point."""
    return float(system.builder.max_violation(x))


def _add_lifted_product(
    system, lift, add_row, pair, t_ref, scale, config
) -> None:
    """Lift ``(t_xa - t_ya)(t_xn - t_yn) >= margin`` into (u, U) space."""
    a_cols, a_coef, a_const = _linear_form(
        system, {pair.x_at: 1.0, pair.y_at: -1.0}, t_ref, scale
    )
    b_cols, b_coef, b_const = _linear_form(
        system, {pair.x_next: 1.0, pair.y_next: -1.0}, t_ref, scale
    )
    coeffs: dict[int, float] = {}

    def bump(col: int, value: float) -> None:
        coeffs[col] = coeffs.get(col, 0.0) + value

    for ci, ai in zip(a_cols, a_coef):
        for cj, bj in zip(b_cols, b_coef):
            if ci == cj:
                bump(lift.U(ci, ci), ai * bj)
            else:
                # U is symmetric: u_i u_j appears once as U_(min,max).
                bump(lift.U(ci, cj), ai * bj)
    for ci, ai in zip(a_cols, a_coef):
        bump(lift.u(ci), b_const * ai)
    for cj, bj in zip(b_cols, b_coef):
        bump(lift.u(cj), a_const * bj)
    constant = a_const * b_const
    if not coeffs:
        return
    add_row(coeffs, lower=config.product_margin / scale**2 - constant)
