"""Interval arithmetic over arrival times: trivial bounds and propagation.

Both Domo's FIFO-direction resolution and the MNT baseline reason with
per-arrival-time intervals ``[lo, hi]``. This module provides the shared
machinery: initial trivial intervals from :class:`TraceIndex` and the
monotonicity propagation pass (arrival times along one packet's path are
separated by at least omega, so bounds push forward and backward).
"""

from __future__ import annotations

from repro.core.records import ArrivalKey, TraceIndex

Interval = tuple[float, float]


def trivial_intervals(index: TraceIndex) -> dict[ArrivalKey, Interval]:
    """Order-constraint intervals for every arrival time in the trace."""
    intervals: dict[ArrivalKey, Interval] = {}
    for packet in index.packets:
        for key in index.keys_of(packet):
            intervals[key] = index.trivial_interval(key)
    return intervals


def propagate_path_monotonicity(
    index: TraceIndex, intervals: dict[ArrivalKey, Interval]
) -> int:
    """Tighten intervals along each packet's path in place.

    Enforces ``lo(t_{i+1}) >= lo(t_i) + omega`` (forward sweep) and
    ``hi(t_i) <= hi(t_{i+1}) - omega`` (backward sweep). Returns how many
    interval endpoints were tightened.
    """
    omega = index.omega_ms
    tightened = 0
    for packet in index.packets:
        keys = index.keys_of(packet)
        for prev_key, key in zip(keys, keys[1:]):
            lo_prev, _ = intervals[prev_key]
            lo, hi = intervals[key]
            if lo_prev + omega > lo:
                intervals[key] = (lo_prev + omega, hi)
                tightened += 1
        for key, next_key in zip(reversed(keys[:-1]), reversed(keys)):
            _, hi_next = intervals[next_key]
            lo, hi = intervals[key]
            if hi_next - omega < hi:
                intervals[key] = (lo, hi_next - omega)
                tightened += 1
    return tightened


def clip_to_valid(intervals: dict[ArrivalKey, Interval]) -> list[ArrivalKey]:
    """Repair any inverted intervals (lo > hi) by collapsing to midpoint.

    Inversions indicate inconsistent tightening (e.g. a wrong FIFO
    resolution under heavy quantization); collapsing keeps downstream
    solvers well-posed. Returns the repaired keys for diagnostics.
    """
    repaired = []
    for key, (lo, hi) in intervals.items():
        if lo > hi:
            mid = 0.5 * (lo + hi)
            intervals[key] = (mid, mid)
            repaired.append(key)
    return repaired


def width(interval: Interval) -> float:
    """Convenience: ``hi - lo``."""
    return interval[1] - interval[0]
