"""Compatibility shim: the Eq. (8) estimator now lives in a backend.

The minimum-delay-variance optimizer moved to
:mod:`repro.backends.domo_qp`, where it is registered as the default
``domo-qp`` estimator backend (see :mod:`repro.backends.base` for the
contract and registry). This module re-exports the historical names so
existing imports — and the SDR lift, which shares ``enumerate_pairs``
and ``_linear_form`` — keep working unchanged.
"""

from __future__ import annotations

from repro.backends.domo_qp import (
    EstimatorConfig,
    _linear_form,
    enumerate_pairs,
    estimate_arrival_times,
    estimate_arrival_times_info,
)

__all__ = [
    "EstimatorConfig",
    "enumerate_pairs",
    "estimate_arrival_times",
    "estimate_arrival_times_info",
]
