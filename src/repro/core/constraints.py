"""Construction of Domo's three constraint families (paper §IV.A).

:func:`build_constraints` turns a :class:`TraceIndex` into a
:class:`ConstraintSystem`: sparse linear rows over the unknown arrival
times (known times folded in as constants) plus the list of *unresolved*
FIFO pairs kept for semidefinite relaxation.

FIFO handling. Eq. (1) — ``(t_ix(x) - t_iy(y)) (t_ix+1(x) - t_iy+1(y)) > 0``
— is non-convex. Two convexifications are supported:

* **resolved/linearized** (default): when the packets' arrival intervals
  at either hop are disjoint, the sign of both factors is determined, and
  Eq. (1) splits into two *linear* inequalities. Resolving tightens
  intervals, which resolves more pairs, so resolution iterates to a fixed
  point.
* **SDR**: pairs whose direction cannot be proven are returned in
  ``fifo_unresolved`` and handled by :mod:`repro.core.sdr` (Eq. (2)-(4)).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.candidate import compute_candidate_sets, loss_evidence
from repro.core.intervals import (
    Interval,
    clip_to_valid,
    propagate_path_monotonicity,
    trivial_intervals,
)
from repro.core.records import ArrivalKey, TraceIndex
from repro.constants import INF
from repro.optim.modeling import ConstraintBuilder, VariableRegistry


@dataclass(frozen=True)
class FifoPair:
    """One shared-node packet pair subject to Eq. (1).

    ``x_at`` / ``y_at`` are the arrival keys at the shared node ``node``;
    ``x_next`` / ``y_next`` at the respective next hops. ``direction`` is
    ``+1`` when x provably precedes y, ``-1`` for the converse, ``0`` when
    unresolved.
    """

    node: int
    x_at: ArrivalKey
    y_at: ArrivalKey
    x_next: ArrivalKey
    y_next: ArrivalKey
    direction: int = 0

    def keys(self) -> tuple[ArrivalKey, ArrivalKey, ArrivalKey, ArrivalKey]:
        return (self.x_at, self.y_at, self.x_next, self.y_next)


@dataclass
class ConstraintConfig:
    """Knobs of constraint construction."""

    #: minimum software processing delay per hop (paper's omega), ms.
    omega_ms: float = 1.0
    #: tolerance absorbed by the quantized S(p) field and clock drift, ms.
    sum_slack_ms: float = 2.0
    #: emit the loss-unsafe upper sum constraint Eq. (6)?
    use_upper_sum: bool = True
    #: Eq. (6) rows are skipped when C(p) exceeds this size (weak + dense).
    max_possible_set: int = 60
    #: generation-time horizon within which two packets sharing a node are
    #: examined as a FIFO pair, ms. Pairs further apart are resolved by
    #: their trivial intervals already.
    fifo_horizon_ms: float = 5_000.0
    #: each node visit is paired with at most this many successors (keeps
    #: pair counts linear on busy forwarders near the sink; more distant
    #: orderings follow transitively from the chained constraints).
    max_fifo_pairs_per_visit: int = 12
    #: minimum separation enforced between ordered same-node events, ms.
    #: The *arrival* margin applies when both packets were received over
    #: the radio (frames at one receiver cannot overlap, so successive
    #: receptions are at least one airtime apart); it must be 0 whenever a
    #: local generation is involved (generations can coincide with
    #: receptions). The *departure* margin applies to successive
    #: transmissions from one node (ack turnaround + backoff + airtime).
    #: Defaults are 0 (paper-faithful, substrate-agnostic); the experiment
    #: harness sets MAC-derived values for the simulator substrate.
    fifo_arrival_margin_ms: float = 0.0
    fifo_departure_margin_ms: float = 0.0
    #: rounds of resolve-then-propagate iteration.
    resolution_rounds: int = 3
    #: packet ids whose S(p) field was flagged by validation (wrapped,
    #: saturated, repaired): their Eq. (6)/(7) rows are skipped entirely —
    #: a corrupt sum poisons both directions.
    distrusted_sum_ids: frozenset = frozenset()
    #: constraint-level degradation: when True and the window shows loss
    #: evidence (seqno gaps, or quarantined packets upstream), the
    #: loss-unsafe Eq. (6) upper rows are suppressed, falling back to the
    #: C*(p)-only Eq. (7) form the paper guarantees under loss. Off by
    #: default (seed behavior); the pipeline turns it on when validation
    #: detects corruption.
    loss_aware_sums: bool = False


@dataclass
class ConstraintSystem:
    """The assembled constraint set over one packet collection."""

    index: TraceIndex
    variables: VariableRegistry
    builder: ConstraintBuilder
    intervals: dict[ArrivalKey, Interval]
    fifo_resolved: list[FifoPair] = field(default_factory=list)
    fifo_unresolved: list[FifoPair] = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    @property
    def num_unknowns(self) -> int:
        return len(self.variables)

    def term_index(self, key: ArrivalKey) -> int | None:
        """Column of an unknown key (None for known arrival times)."""
        return self.variables.get(key)

    def variable_bounds(self):
        """Per-variable interval bounds aligned with the registry order."""
        lows, highs = [], []
        for key in self.variables:
            lo, hi = self.intervals[key]
            lows.append(lo)
            highs.append(hi)
        return lows, highs

    def add_row(
        self,
        terms: dict[ArrivalKey, float],
        lower: float = -INF,
        upper: float = INF,
        tag: str = "",
    ) -> None:
        """Add a row expressed over arrival keys; constants are folded.

        Known arrival times contribute ``coeff * value`` to both bounds;
        rows that become constant are checked and dropped.
        """
        folded: dict[int, float] = {}
        shift = 0.0
        for key, coefficient in terms.items():
            column = self.variables.get(key)
            if column is None:
                shift += coefficient * self.index.known_value(key)
            else:
                folded[column] = folded.get(column, 0.0) + coefficient
        new_lower = lower - shift if lower != -INF else -INF
        new_upper = upper - shift if upper != INF else INF
        if not folded:
            # Fully known: tolerate small violations (quantization noise).
            if new_lower > 1e-6 or new_upper < -1e-6:
                self.stats["inconsistent_known_rows"] = (
                    self.stats.get("inconsistent_known_rows", 0) + 1
                )
            return
        self.builder.add(folded, lower=new_lower, upper=new_upper, tag=tag)


def build_constraints(
    index: TraceIndex, config: ConstraintConfig | None = None
) -> ConstraintSystem:
    """Assemble the full constraint system for the packets in ``index``."""
    config = config or ConstraintConfig()
    variables = VariableRegistry()
    for key in index.unknown_keys():
        variables.add(key)
    system = ConstraintSystem(
        index=index,
        variables=variables,
        builder=ConstraintBuilder(num_variables=len(variables)),
        intervals=trivial_intervals(index),
    )
    _resolve_fifo_pairs(system, config)
    _add_order_rows(system, config)
    _add_fifo_rows(system, config)
    _add_sum_rows(system, config)
    system.stats.update(
        unknowns=len(variables),
        rows=len(system.builder),
        fifo_resolved=len(system.fifo_resolved),
        fifo_unresolved=len(system.fifo_unresolved),
    )
    return system


# ----------------------------------------------------------------------
# FIFO pair enumeration and resolution
# ----------------------------------------------------------------------


def _enumerate_fifo_pairs(
    index: TraceIndex, config: ConstraintConfig
) -> list[FifoPair]:
    """All same-node packet pairs within the generation-time horizon."""
    pairs: list[FifoPair] = []
    for node, visits in index.node_visits.items():
        ordered = sorted(
            visits, key=lambda item: item[0].generation_time_ms
        )
        for i, (x, hop_x) in enumerate(ordered):
            taken = 0
            for y, hop_y in ordered[i + 1:]:
                gap = y.generation_time_ms - x.generation_time_ms
                if gap > config.fifo_horizon_ms:
                    break
                if taken >= config.max_fifo_pairs_per_visit:
                    break
                if x.packet_id == y.packet_id:
                    continue
                taken += 1
                pairs.append(
                    FifoPair(
                        node=node,
                        x_at=ArrivalKey(x.packet_id, hop_x),
                        y_at=ArrivalKey(y.packet_id, hop_y),
                        x_next=ArrivalKey(x.packet_id, hop_x + 1),
                        y_next=ArrivalKey(y.packet_id, hop_y + 1),
                    )
                )
    return pairs


def _try_resolve(
    pair: FifoPair, intervals: dict[ArrivalKey, Interval]
) -> int:
    """Direction of a pair provable from current intervals (0 if none)."""
    x_lo, x_hi = intervals[pair.x_at]
    y_lo, y_hi = intervals[pair.y_at]
    xn_lo, xn_hi = intervals[pair.x_next]
    yn_lo, yn_hi = intervals[pair.y_next]
    if x_hi <= y_lo or xn_hi <= yn_lo:
        return 1
    if y_hi <= x_lo or yn_hi <= xn_lo:
        return -1
    return 0


def _leg_margins(pair: FifoPair, config: ConstraintConfig) -> tuple[float, float]:
    """(arrival-leg, departure-leg) margins for one pair.

    The arrival margin only applies when *both* packets physically arrived
    at the node over the radio; a locally generated packet (hop 0) can be
    timestamped at any instant, so those pairs get margin 0. Departures
    are always transmissions, so the departure margin always applies.
    """
    arrival = (
        config.fifo_arrival_margin_ms
        if pair.x_at.hop > 0 and pair.y_at.hop > 0
        else 0.0
    )
    return arrival, config.fifo_departure_margin_ms


def _apply_direction(
    pair: FifoPair,
    direction: int,
    intervals: dict[ArrivalKey, Interval],
    config: ConstraintConfig,
) -> int:
    """Tighten intervals with a resolved ordering; returns #tightenings."""
    if direction == 1:
        earlier = (pair.x_at, pair.x_next)
        later = (pair.y_at, pair.y_next)
    else:
        earlier = (pair.y_at, pair.y_next)
        later = (pair.x_at, pair.x_next)
    tightened = 0
    for (early_key, late_key), margin in zip(
        zip(earlier, later), _leg_margins(pair, config)
    ):
        e_lo, e_hi = intervals[early_key]
        l_lo, l_hi = intervals[late_key]
        if l_hi - margin < e_hi:
            intervals[early_key] = (e_lo, l_hi - margin)
            tightened += 1
        if e_lo + margin > l_lo:
            intervals[late_key] = (e_lo + margin, l_hi)
            tightened += 1
    return tightened


def _shared_suffix_direction(index: TraceIndex, pair: FifoPair) -> int:
    """Sound resolution for pairs whose downstream paths coincide.

    When x and y follow the *same node sequence* from the shared node all
    the way to the sink, per-hop FIFO preserves their relative order at
    every one of those hops, so the (known) sink arrival order equals the
    departure order at the shared node.
    """
    x = index.by_id[pair.x_at.packet_id]
    y = index.by_id[pair.y_at.packet_id]
    if x.path[pair.x_at.hop:] != y.path[pair.y_at.hop:]:
        return 0
    return 1 if x.sink_arrival_ms < y.sink_arrival_ms else -1


def _resolve_fifo_pairs(system: ConstraintSystem, config: ConstraintConfig):
    """Iteratively resolve pair directions and tighten intervals."""
    index = system.index
    pairs = _enumerate_fifo_pairs(index, config)
    directions: dict[int, int] = {}
    propagate_path_monotonicity(index, system.intervals)
    # First pass: structural resolution via shared downstream paths.
    for pair_id, pair in enumerate(pairs):
        direction = _shared_suffix_direction(index, pair)
        if direction != 0:
            directions[pair_id] = direction
            _apply_direction(pair, direction, system.intervals, config)
    propagate_path_monotonicity(index, system.intervals)
    clip_to_valid(system.intervals)
    for _ in range(max(1, config.resolution_rounds)):
        progress = 0
        for pair_id, pair in enumerate(pairs):
            if directions.get(pair_id, 0) != 0:
                continue
            direction = _try_resolve(pair, system.intervals)
            if direction != 0:
                directions[pair_id] = direction
                progress += 1
                _apply_direction(pair, direction, system.intervals, config)
        propagate_path_monotonicity(index, system.intervals)
        clip_to_valid(system.intervals)
        if progress == 0:
            break
    for pair_id, pair in enumerate(pairs):
        direction = directions.get(pair_id, 0)
        resolved_pair = FifoPair(
            node=pair.node,
            x_at=pair.x_at,
            y_at=pair.y_at,
            x_next=pair.x_next,
            y_next=pair.y_next,
            direction=direction,
        )
        if direction == 0:
            system.fifo_unresolved.append(resolved_pair)
        else:
            system.fifo_resolved.append(resolved_pair)


# ----------------------------------------------------------------------
# Row emission
# ----------------------------------------------------------------------


def _add_order_rows(system: ConstraintSystem, config: ConstraintConfig):
    """Eq. (5): consecutive arrival times separated by at least omega."""
    for packet in system.index.packets:
        keys = system.index.keys_of(packet)
        for prev_key, key in zip(keys, keys[1:]):
            system.add_row(
                {key: 1.0, prev_key: -1.0},
                lower=config.omega_ms,
                tag=f"order:{packet.packet_id}:{key.hop}",
            )


def _add_fifo_rows(system: ConstraintSystem, config: ConstraintConfig):
    """Linear rows for every resolved FIFO pair (both hops)."""
    for pair in system.fifo_resolved:
        if pair.direction == 1:
            first = (pair.x_at, pair.x_next)
            second = (pair.y_at, pair.y_next)
        else:
            first = (pair.y_at, pair.y_next)
            second = (pair.x_at, pair.x_next)
        for (early, late), margin in zip(
            zip(first, second), _leg_margins(pair, config)
        ):
            system.add_row(
                {late: 1.0, early: -1.0},
                lower=margin,
                tag=f"fifo:{pair.node}",
            )


def _add_sum_rows(system: ConstraintSystem, config: ConstraintConfig):
    """Eq. (6)/(7): bracket each S(p) by candidate-set delay sums.

    Degradation hooks (robustness tier): packets whose S(p) was flagged
    by validation contribute no sum rows at all; with ``loss_aware_sums``
    and loss evidence in the window, the loss-unsafe Eq. (6) rows are
    suppressed (C*(p)-only degradation). Both events are counted in
    ``system.stats``.
    """
    emitted_lower = emitted_upper = 0
    distrusted_skips = degraded_upper = 0
    unanchored = 0
    suppress_upper = (
        config.loss_aware_sums and loss_evidence(system.index) > 0
    )
    for packet in system.index.packets:
        if packet.packet_id in config.distrusted_sum_ids:
            distrusted_skips += 1
            continue
        sets = compute_candidate_sets(system.index, packet)
        if sets is None:
            continue
        if not sets.anchored:
            unanchored += 1
            continue
        own_terms = {
            ArrivalKey(packet.packet_id, 1): 1.0,
            ArrivalKey(packet.packet_id, 0): -1.0,
        }
        if packet.path_length < 2:
            continue
        s_value = float(packet.sum_of_delays_ms)

        # Eq. (7): S(p) >= D(p) + sum over C*(p). Always sound.
        terms = dict(own_terms)
        for candidate, hop in sets.guaranteed:
            _accumulate_delay_terms(terms, candidate.packet_id, hop)
        system.add_row(
            terms,
            upper=s_value + config.sum_slack_ms,
            tag=f"sum_lo:{packet.packet_id}",
        )
        emitted_lower += 1

        # Eq. (6): S(p) <= D(p) + sum over C(p). Only holds loss-free;
        # kept optional, size-capped, and suppressed under loss evidence.
        if (
            config.use_upper_sum
            and len(sets.possible) <= config.max_possible_set
        ):
            if suppress_upper:
                degraded_upper += 1
                continue
            terms = dict(own_terms)
            for candidate, hop in sets.possible:
                _accumulate_delay_terms(terms, candidate.packet_id, hop)
            system.add_row(
                terms,
                lower=s_value - config.sum_slack_ms,
                tag=f"sum_hi:{packet.packet_id}",
            )
            emitted_upper += 1
    system.stats["sum_lower_rows"] = emitted_lower
    system.stats["sum_upper_rows"] = emitted_upper
    system.stats["sum_rows_distrusted"] = distrusted_skips
    system.stats["sum_upper_degraded"] = degraded_upper
    system.stats["sum_unanchored"] = unanchored


def _accumulate_delay_terms(
    terms: dict[ArrivalKey, float], packet_id, hop: int
) -> None:
    """Add ``D = t[hop+1] - t[hop]`` of a packet into a row's terms."""
    arrive = ArrivalKey(packet_id, hop)
    depart = ArrivalKey(packet_id, hop + 1)
    terms[depart] = terms.get(depart, 0.0) + 1.0
    terms[arrive] = terms.get(arrive, 0.0) - 1.0
