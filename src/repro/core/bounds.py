"""Lower/upper bounds of arrival times via sub-graph LPs (paper §IV.C).

For each unknown arrival time ``t`` Domo solves ``min t`` and ``max t``
subject to the three constraint families. Using every constraint in the
trace for every target would be quadratically expensive, so a sub-graph
of the constraint graph is extracted around the target (BFS seed of
*graph cut size* vertices, boundary tuned by BLP) and only constraints
among extracted vertices are used — constraints crossing the boundary are
*soundly relaxed* by replacing outside variables with their interval
endpoints, so the bounds remain valid (just possibly looser).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.core.constraints import ConstraintSystem
from repro.core.records import ArrivalKey
from repro.graphcut.extraction import SubgraphExtractor
from repro.graphcut.graph import ConstraintGraph
from repro.optim.lp import LinearProgram, solve_lp
from repro.constants import INF
from repro.optim.modeling import ConstraintRow


@dataclass
class BoundsConfig:
    """Knobs of the bound computation."""

    #: the paper's *graph cut size* (Fig. 10 sweeps 5000-20000).
    graph_cut_size: int = 10_000
    #: tune the BFS boundary with balanced label propagation.
    use_blp: bool = True
    #: when the LP is infeasible (loss broke an Eq. (6) row), retry
    #: without the loss-unsafe rows before falling back to the interval.
    drop_upper_sum_on_infeasible: bool = True
    #: in batched mode one extraction serves every target inside its BFS
    #: core of this fraction of the cut size (an amortization on top of
    #: the paper's per-target scheme; set to 0 to force per-target).
    core_fraction: float = 0.25


@dataclass
class BoundResult:
    """Bounds of one arrival time, with provenance."""

    key: ArrivalKey
    lower: float
    upper: float
    #: "lp" (full solve), "lp_relaxed" (Eq. (6) dropped), "interval"
    #: (LP unusable; trivial/propagated interval), or "known".
    method: str = "lp"

    @property
    def width(self) -> float:
        return self.upper - self.lower


class BoundComputer:
    """Computes per-arrival-time bounds over one constraint system."""

    def __init__(
        self, system: ConstraintSystem, config: BoundsConfig | None = None
    ) -> None:
        self.system = system
        self.config = config or BoundsConfig()
        self.graph = self._build_graph()
        self._extractor = SubgraphExtractor(
            self.graph,
            cut_size=self.config.graph_cut_size,
            use_blp=self.config.use_blp,
        )
        self._stats: dict[str, int] = {}
        # column -> rows touching it, so sub-graph projection only visits
        # relevant rows instead of scanning the whole system per target.
        self._rows_by_column: dict[int, list[int]] = {}
        for row_id, row in enumerate(self.system.builder.rows):
            for column in row.indices:
                self._rows_by_column.setdefault(column, []).append(row_id)

    @property
    def stats(self) -> dict:
        return dict(self._stats)

    def _build_graph(self) -> ConstraintGraph:
        """Vertices = unknown keys; cliques per constraint row (paper §IV.C)."""
        graph = ConstraintGraph()
        variables = self.system.variables
        for key in variables:
            graph.add_vertex(key)
        for row in self.system.builder.rows:
            graph.add_clique([variables.key_of(c) for c in row.indices])
        return graph

    # ------------------------------------------------------------------

    def bounds_for(self, key: ArrivalKey) -> BoundResult:
        """Bounds of one arrival time (knowns collapse to a point)."""
        if self.system.index.is_known(key):
            value = self.system.index.known_value(key)
            return BoundResult(key=key, lower=value, upper=value, method="known")
        inside = self._extractor.extract(key).inside
        return self._solve_batch([key], inside)[key]

    def bounds_for_packet(self, packet_id) -> list[BoundResult]:
        """Bounds of every unknown arrival time of one packet."""
        return [
            self.bounds_for(key)
            for key in self.system.variables
            if key.packet_id == packet_id
        ]

    def bounds_for_all(
        self, keys: list[ArrivalKey] | None = None
    ) -> dict[ArrivalKey, BoundResult]:
        """Bounds of many (default: all) unknown arrival times.

        When the constraint graph exceeds the cut size, one extraction is
        reused for every still-uncovered target inside its BFS core
        (``core_fraction`` of the cut size) — the projected constraint
        rows are identical for all of them, so only the LP objective
        changes per target.
        """
        wanted = list(keys) if keys is not None else list(self.system.variables)
        results: dict[ArrivalKey, BoundResult] = {}
        if self.graph.num_vertices <= self.config.graph_cut_size:
            inside = set(self.graph.vertices())
            return self._solve_batch(wanted, inside)

        core_size = max(1, int(self.config.graph_cut_size * self.config.core_fraction))
        pending = [k for k in wanted]
        covered: set = set()
        for target in pending:
            if target in covered:
                continue
            extracted = self._extractor.extract(target)
            if self.config.core_fraction > 0.0:
                core = set(self.graph.bfs_ball(target, core_size))
                core &= extracted.inside
            else:
                core = {target}
            batch = [
                k for k in pending
                if k not in covered and (k == target or k in core)
            ]
            batch_results = self._solve_batch(batch, extracted.inside)
            results.update(batch_results)
            covered.update(batch_results)
        return results

    # ------------------------------------------------------------------

    def _solve_batch(
        self, keys: list[ArrivalKey], inside: set
    ) -> dict[ArrivalKey, BoundResult]:
        """Solve min/max LPs for several targets over one sub-graph."""
        variables = self.system.variables
        columns = sorted(
            variables.index_of(k) for k in inside if k in variables
        )
        local_of = {column: i for i, column in enumerate(columns)}
        n_local = len(columns)

        lows = np.empty(n_local)
        highs = np.empty(n_local)
        for column, i in local_of.items():
            lo, hi = self.system.intervals[variables.key_of(column)]
            lows[i] = lo
            highs[i] = hi

        full_rows = self._relax_rows(local_of)
        systems = [_BatchLP(full_rows, n_local, lows, highs)]
        if self.config.drop_upper_sum_on_infeasible:
            relaxed = [r for r in full_rows if not r[3].startswith("sum_hi")]
            systems.append(_BatchLP(relaxed, n_local, lows, highs))

        results: dict[ArrivalKey, BoundResult] = {}
        for key in keys:
            interval = self.system.intervals[key]
            target_local = local_of[variables.index_of(key)]
            entry = None
            for attempt, batch_lp in enumerate(systems):
                outcome = batch_lp.min_max(target_local)
                if outcome is None:
                    continue
                lower = max(outcome[0], interval[0])
                upper = min(outcome[1], interval[1])
                if lower <= upper:
                    method = "lp" if attempt == 0 else "lp_relaxed"
                    entry = BoundResult(key, lower, upper, method)
                    break
            if entry is None:
                entry = BoundResult(key, interval[0], interval[1], "interval")
            self._stats[entry.method] = self._stats.get(entry.method, 0) + 1
            results[key] = entry
        return results

    def _relax_rows(self, local_of: dict[int, int]):
        """Project builder rows onto the sub-graph, soundly relaxed.

        Rows not touching any inside column are irrelevant; rows partially
        outside have their outside terms replaced by interval worst cases,
        which keeps every remaining row valid for the true arrival times.
        """
        variables = self.system.variables
        relevant_ids: set[int] = set()
        for column in local_of:
            relevant_ids.update(self._rows_by_column.get(column, ()))
        rows = self.system.builder.rows
        projected: list[tuple[dict[int, float], float, float, str]] = []
        for row_id in sorted(relevant_ids):
            row = rows[row_id]
            inside_terms: dict[int, float] = {}
            slack_lo = slack_hi = 0.0
            for column, coefficient in zip(row.indices, row.coefficients):
                local = local_of.get(column)
                if local is not None:
                    inside_terms[local] = coefficient
                    continue
                lo, hi = self.system.intervals[variables.key_of(column)]
                slack_lo += min(coefficient * lo, coefficient * hi)
                slack_hi += max(coefficient * lo, coefficient * hi)
            if not inside_terms:
                continue
            lower = row.lower - slack_hi if np.isfinite(row.lower) else -INF
            upper = row.upper - slack_lo if np.isfinite(row.upper) else INF
            if lower == -INF and upper == INF:
                continue
            projected.append((inside_terms, lower, upper, row.tag))
        return projected


class _BatchLP:
    """A fixed feasible region; min/max of single coordinates on demand."""

    def __init__(self, rows, n_local, lows, highs):
        self.n_local = n_local
        self.lows = lows
        self.highs = highs
        if rows:
            data, row_ids, col_ids = [], [], []
            self.row_lower = np.empty(len(rows))
            self.row_upper = np.empty(len(rows))
            for r, (terms, lower, upper, _) in enumerate(rows):
                self.row_lower[r] = lower
                self.row_upper[r] = upper
                for c, v in terms.items():
                    row_ids.append(r)
                    col_ids.append(c)
                    data.append(v)
            self.A = sp.csr_matrix(
                (data, (row_ids, col_ids)), shape=(len(rows), n_local)
            )
        else:
            self.A = sp.csr_matrix((0, n_local))
            self.row_lower = np.empty(0)
            self.row_upper = np.empty(0)

    def min_max(self, target_local: int) -> tuple[float, float] | None:
        """(min, max) of one coordinate, or None when the LP fails."""
        c = np.zeros(self.n_local)
        c[target_local] = 1.0
        low = solve_lp(
            LinearProgram(
                c=c, A=self.A, row_lower=self.row_lower,
                row_upper=self.row_upper, x_lower=self.lows, x_upper=self.highs,
            )
        )
        if not low.status.is_usable:
            return None
        high = solve_lp(
            LinearProgram(
                c=-c, A=self.A, row_lower=self.row_lower,
                row_upper=self.row_upper, x_lower=self.lows, x_upper=self.highs,
            )
        )
        if not high.status.is_usable:
            return None
        return float(low.objective), float(-high.objective)
