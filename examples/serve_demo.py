#!/usr/bin/env python
"""Replay a simulated trace through the reconstruction service.

Feeds one stream from N concurrent client connections (round-robin
shards of the trace, so the server sees arbitrarily interleaved
partial orderings), FLUSHes, queries RESULTS back, and verifies the
served estimates are **bit-for-bit identical** to the batch pipeline's
``DomoReconstructor.estimate`` on the same packets. Exits 1 on any
mismatch — this is the end-to-end parity check the CI serve-smoke job
runs.

Against an in-process server (self-contained demo)::

    python examples/serve_demo.py --connections 4

Against an already-running server (two-terminal demo, CI)::

    domo simulate --nodes 16 --duration 30 --seed 7 --save-stream t.jsonl
    domo serve --socket /tmp/domo.sock &
    python examples/serve_demo.py --socket /tmp/domo.sock \
        --trace t.jsonl --connections 2
"""

import argparse
import sys
import threading

from repro.core.pipeline import DomoConfig, DomoReconstructor
from repro.serve.client import connect


def parse_args(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--socket", type=str, default=None,
        help="unix socket of a running 'domo serve' (default: start an "
             "in-process server on a private socket)")
    parser.add_argument(
        "--port", type=int, default=None,
        help="TCP port of a running server (alternative to --socket)")
    parser.add_argument("--host", type=str, default="127.0.0.1")
    parser.add_argument(
        "--trace", type=str, default=None,
        help="JSONL trace to replay (default: simulate a small one)")
    parser.add_argument(
        "--connections", type=int, default=3,
        help="concurrent feeder connections (default 3)")
    parser.add_argument(
        "--stream", type=str, default="demo",
        help="stream id to feed (default 'demo')")
    parser.add_argument("--nodes", type=int, default=16)
    parser.add_argument("--duration", type=float, default=25.0)
    parser.add_argument("--seed", type=int, default=7)
    return parser.parse_args(argv)


def load_packets(args):
    if args.trace:
        from repro.sim.io import iter_packets_jsonl

        return list(iter_packets_jsonl(args.trace))
    from repro.sim import NetworkConfig, simulate_network

    trace = simulate_network(
        NetworkConfig(
            num_nodes=args.nodes,
            placement="grid",
            duration_ms=args.duration * 1000.0,
            packet_period_ms=2_500.0,
            seed=args.seed,
        )
    )
    return list(trace.received)


def replay(args, packets, connect_kwargs) -> dict:
    """Shard the trace over N connections; return the served estimates."""
    shards = [packets[i :: args.connections] for i in range(args.connections)]
    failures = []

    def feed(shard):
        try:
            with connect(**connect_kwargs) as client:
                client.send_packets(shard, stream=args.stream)
                # HEALTH is the sync point: its reply means every record
                # this connection pipelined was read (and any rejection
                # surfaced on async_errors).
                reply = client.health()
                if not reply.get("ok"):
                    failures.append(reply)
                failures.extend(client.async_errors)
        except Exception as exc:  # noqa: BLE001 - surfaced to main thread
            failures.append({"error": repr(exc)})

    threads = [
        threading.Thread(target=feed, args=(shard,)) for shard in shards
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if failures:
        raise RuntimeError(f"feeder failures: {failures[:3]}")

    with connect(**connect_kwargs) as query:
        flushed = query.flush(args.stream)
        if not flushed.get("ok"):
            raise RuntimeError(f"FLUSH failed: {flushed}")
        print(
            f"flushed stream {args.stream!r}: "
            f"{flushed['windows_committed']} window(s) committed"
        )
        return query.estimates(args.stream)


def main(argv=None) -> int:
    args = parse_args(argv)
    packets = load_packets(args)
    print(
        f"replaying {len(packets)} records over "
        f"{args.connections} connection(s)"
    )

    batch = DomoReconstructor(DomoConfig()).estimate(packets)

    handle = None
    if args.socket is None and args.port is None:
        from repro.serve.server import ReconstructionServer, run_in_thread

        import tempfile, os
        sock = os.path.join(tempfile.mkdtemp(prefix="domo_demo_"), "s.sock")
        handle = run_in_thread(
            ReconstructionServer(DomoConfig(), socket_path=sock)
        )
        connect_kwargs = {"socket_path": sock}
        print(f"started in-process server on unix:{sock}")
    elif args.socket is not None:
        connect_kwargs = {"socket_path": args.socket}
    else:
        connect_kwargs = {"host": args.host, "port": args.port}

    try:
        served = replay(args, packets, connect_kwargs)
    finally:
        if handle is not None:
            handle.stop()

    if served == batch.estimates:
        print(
            f"PARITY OK: {len(served)} served estimates are bit-for-bit "
            f"identical to the batch pipeline"
        )
        return 0
    missing = set(batch.estimates) - set(served)
    extra = set(served) - set(batch.estimates)
    drift = [
        key
        for key in set(served) & set(batch.estimates)
        if served[key] != batch.estimates[key]
    ]
    print(
        f"PARITY FAILED: {len(missing)} missing, {len(extra)} extra, "
        f"{len(drift)} drifted estimate(s)",
        file=sys.stderr,
    )
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
