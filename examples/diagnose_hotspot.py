#!/usr/bin/env python
"""Use-case demo: localize a slow node from sink-side data only.

The paper's introduction argues that per-hop delay knowledge "enables
efficient detection of the problematic nodes". This example injects a
processing-delay fault into one forwarder, runs Domo on the sink trace,
ranks nodes by their reconstructed average sojourn time, and checks that
the faulty node tops the ranking — something end-to-end delays alone
cannot do (every descendant of the slow node looks equally bad).

    python examples/diagnose_hotspot.py
"""

import numpy as np

from repro import DomoConfig, DomoReconstructor, NetworkConfig, Simulator


def pick_busy_forwarder(trace, sink: int) -> int:
    """A node that forwards plenty of third-party traffic."""
    counts: dict[int, int] = {}
    for packet in trace.received:
        for node in packet.path[1:-1]:
            counts[node] = counts.get(node, 0) + 1
    return max(counts, key=counts.get)


def reconstructed_node_delays(trace, estimate) -> dict[int, list[float]]:
    delays: dict[int, list[float]] = {}
    for packet in trace.received:
        for hop, delay in enumerate(estimate.delays_of(packet.packet_id)):
            delays.setdefault(packet.path[hop], []).append(delay)
    return delays


def main() -> None:
    print("=== Diagnosing a slow forwarder with Domo ===\n")
    base = NetworkConfig(
        num_nodes=49,
        placement="grid",
        duration_ms=60_000.0,
        packet_period_ms=4_000.0,
        seed=9,
    )

    # Dry run to find a busy forwarder to break.
    probe = Simulator(base).run()
    victim = pick_busy_forwarder(probe, sink=0)
    extra_ms = 25.0
    print(f"injecting +{extra_ms:.0f} ms processing delay into node {victim}\n")

    faulty = NetworkConfig(**{**base.__dict__, "slow_nodes": {victim: extra_ms}})
    trace = Simulator(faulty).run()

    # End-to-end view: many sources look slow, not just the victim.
    e2e: dict[int, list[float]] = {}
    for packet in trace.received:
        e2e.setdefault(packet.packet_id.source, []).append(packet.e2e_delay_ms)
    worst_sources = sorted(
        e2e, key=lambda n: -float(np.mean(e2e[n]))
    )[:5]
    print(
        "worst end-to-end sources (ambiguous — they share the slow path): "
        f"{worst_sources}"
    )

    # Domo's per-hop view pinpoints the node itself.
    estimate = DomoReconstructor(DomoConfig()).estimate(trace)
    per_node = reconstructed_node_delays(trace, estimate)
    ranking = sorted(
        (
            (float(np.mean(values)), node)
            for node, values in per_node.items()
            if len(values) >= 10
        ),
        reverse=True,
    )
    print("\nreconstructed average sojourn time per node (top 5):")
    for mean_delay, node in ranking[:5]:
        marker = "  <-- injected fault" if node == victim else ""
        print(f"  node {node:3d}: {mean_delay:7.2f} ms{marker}")

    top_node = ranking[0][1]
    if top_node == victim:
        print(f"\nDomo correctly localized the fault to node {victim}.")
    else:
        print(
            f"\ntop-ranked node {top_node} differs from the injected "
            f"victim {victim} (check traffic volume through the victim)."
        )


if __name__ == "__main__":
    main()
