#!/usr/bin/env python
"""Online monitoring: reconstruct per-hop delays in sliding batches.

A deployment doesn't wait for the full trace: the PC processes the sink
stream in batches as packets arrive, reusing the paper's overlapping
time-window idea *across* batches — each batch includes a tail of the
previous one so boundary packets keep their constraints, and only the
non-overlapping region's estimates are committed.

    python examples/streaming_monitor.py
"""

import numpy as np

from repro import DomoConfig, DomoReconstructor, NetworkConfig, simulate_network


def streaming_estimates(trace, batch_ms=20_000.0, overlap_ms=10_000.0):
    """Commit estimates batch by batch, as an online pipeline would."""
    domo = DomoReconstructor(DomoConfig())
    packets = sorted(trace.received, key=lambda p: p.sink_arrival_ms)
    if not packets:
        return {}, 0
    horizon = packets[-1].sink_arrival_ms
    committed = {}
    batches = 0
    commit_from = -np.inf
    start = packets[0].sink_arrival_ms
    while commit_from < horizon:
        batch_end = start + batch_ms
        batch = [
            p for p in packets
            if start - overlap_ms <= p.sink_arrival_ms < batch_end
        ]
        if batch:
            estimate = domo.estimate(batch)
            for p in batch:
                if p.sink_arrival_ms >= commit_from:
                    committed[p.packet_id] = estimate.arrival_times[p.packet_id]
            batches += 1
        commit_from = batch_end
        start = batch_end
    return committed, batches


def main() -> None:
    print("=== streaming per-hop delay monitoring ===\n")
    trace = simulate_network(
        NetworkConfig(
            num_nodes=49,
            placement="grid",
            duration_ms=120_000.0,
            packet_period_ms=4_000.0,
            seed=12,
        )
    )
    print(f"{trace.num_received} packets over 120 s\n")

    committed, batches = streaming_estimates(trace)
    print(f"processed {batches} batches of ~20 s each\n")

    # Compare streaming vs full-trace (offline) accuracy.
    offline = DomoReconstructor(DomoConfig()).estimate(trace)
    errors_stream, errors_offline = [], []
    for p in trace.received:
        truth = trace.truth_of(p.packet_id).node_delays()
        if p.packet_id in committed:
            times = committed[p.packet_id]
            stream_delays = [b - a for a, b in zip(times, times[1:])]
            errors_stream.extend(
                abs(a - b) for a, b in zip(stream_delays, truth)
            )
        errors_offline.extend(
            abs(a - b) for a, b in zip(offline.delays_of(p.packet_id), truth)
        )
    print(
        f"offline accuracy  : {np.mean(errors_offline):.2f} ms mean error"
    )
    print(
        f"streaming accuracy: {np.mean(errors_stream):.2f} ms mean error "
        f"({len(errors_stream)} delays committed online)"
    )
    print(
        "\nThe sliding overlap keeps streaming accuracy close to the "
        "offline solve while bounding per-batch latency."
    )


if __name__ == "__main__":
    main()
