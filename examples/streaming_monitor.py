#!/usr/bin/env python
"""Online monitoring on the streaming reconstruction engine.

A deployment doesn't wait for the full trace: the PC ingests the sink
stream as packets arrive and :class:`repro.stream.StreamingReconstructor`
runs the paper's overlapping time windows incrementally — a watermark on
sink-arrival time seals each window once late reordered packets can no
longer join it, sealed windows are solved as they freeze, and committed
windows evict their packets so memory tracks the active-window horizon,
not the trace length.

    python examples/streaming_monitor.py
"""

import numpy as np

from repro import DomoConfig, NetworkConfig, simulate_network
from repro.stream import StreamingReconstructor


def stream_in_chunks(trace, lateness_ms=4_000.0, chunk_size=64):
    """Feed the trace sink-arrival-ordered, as a live sink would emit it.

    The window span is pinned explicitly: a streaming run anchors its
    grid from the warmup buffer alone, so leaving the span to the
    packet-density heuristic would give the online and offline runs
    different windows and muddy the comparison. A deployment knows its
    generation periods and sets the span the same way.
    """
    config = DomoConfig(window_span_ms=12_000.0)
    engine = StreamingReconstructor(config, lateness_ms=lateness_ms)
    arrivals = sorted(trace.received, key=lambda p: p.sink_arrival_ms)
    committed = {}
    with engine:
        for lo in range(0, len(arrivals), chunk_size):
            engine.ingest(arrivals[lo:lo + chunk_size])
            for window in engine.poll():
                committed.update(window.arrival_times)
        for window in engine.flush():
            committed.update(window.arrival_times)
    return committed, engine.telemetry


def main() -> None:
    print("=== streaming per-hop delay monitoring ===\n")
    trace = simulate_network(
        NetworkConfig(
            num_nodes=49,
            placement="grid",
            duration_ms=120_000.0,
            packet_period_ms=4_000.0,
            seed=12,
        )
    )
    print(f"{trace.num_received} packets over 120 s\n")

    committed, telemetry = stream_in_chunks(trace)

    print("lifecycle telemetry")
    print(f"  windows committed : {telemetry.windows_committed} "
          f"({telemetry.windows_skipped} skipped)")
    print(f"  peak backlog      : {telemetry.max_backlog} sealed windows "
          "awaiting commit")
    print("  seal->commit      : "
          f"mean {1e3 * telemetry.mean_seal_to_commit_s:.1f} ms / "
          f"max {1e3 * telemetry.seal_to_commit_max_s:.1f} ms")
    print(f"  evicted packets   : {telemetry.evicted_packets} "
          f"(peak resident {telemetry.peak_resident_packets} of "
          f"{telemetry.ingested} ingested)\n")

    # Compare streaming vs full-trace (offline) accuracy. The offline
    # reconstructor is itself "ingest everything, then flush" on the same
    # engine, so the only difference is the finite lateness allowance.
    offline_committed, _ = stream_in_chunks(trace, lateness_ms=np.inf)
    errors_stream, errors_offline = [], []
    for p in trace.received:
        truth = trace.truth_of(p.packet_id).node_delays()
        for source, sink in (
            (committed, errors_stream),
            (offline_committed, errors_offline),
        ):
            times = source.get(p.packet_id)
            if times is None:
                continue
            delays = [b - a for a, b in zip(times, times[1:])]
            sink.extend(abs(a - b) for a, b in zip(delays, truth))
    print(
        f"offline accuracy  : {np.mean(errors_offline):.2f} ms mean error"
    )
    print(
        f"streaming accuracy: {np.mean(errors_stream):.2f} ms mean error "
        f"({len(errors_stream)} delays committed online)"
    )
    print(
        "\nThe watermark keeps per-window commit latency bounded while the "
        "overlapping windows keep streaming accuracy at the offline solve."
    )


if __name__ == "__main__":
    main()
