#!/usr/bin/env python
"""Quickstart: simulate a collection network, decompose per-hop delays.

Runs a 49-node network for one simulated minute, reconstructs every
packet's per-hop delays with Domo, and prints a few decompositions next
to the simulator's ground truth.

    python examples/quickstart.py
"""

import numpy as np

from repro import DomoConfig, DomoReconstructor, NetworkConfig, simulate_network


def main() -> None:
    print("=== Domo quickstart ===\n")

    # 1. Simulate a data-collection network (sink = node 0). The trace's
    #    `received` list is exactly what the sink knows; `ground_truth`
    #    is the simulator's oracle used only for scoring.
    config = NetworkConfig(
        num_nodes=49,
        placement="grid",
        duration_ms=60_000.0,
        packet_period_ms=4_000.0,
        seed=7,
    )
    trace = simulate_network(config)
    print(
        f"simulated {config.num_nodes} nodes for "
        f"{config.duration_ms / 1000:.0f}s: "
        f"{trace.num_received} packets delivered "
        f"(delivery ratio {trace.delivery_ratio:.3f})\n"
    )

    # 2. Reconstruct per-hop arrival times from the sink-side trace only.
    domo = DomoReconstructor(DomoConfig())
    estimate = domo.estimate(trace)
    print(
        f"reconstructed {estimate.num_estimated} interior arrival times "
        f"in {estimate.solve_time_s:.1f}s "
        f"({estimate.time_per_delay_ms:.1f} ms per delay)\n"
    )

    # 3. Show a few per-packet decompositions against ground truth.
    multi_hop = [p for p in trace.received if p.path_length >= 4][:3]
    for packet in multi_hop:
        truth = trace.truth_of(packet.packet_id)
        reconstructed = estimate.delays_of(packet.packet_id)
        print(f"packet {packet.packet_id}  path {' -> '.join(map(str, packet.path))}")
        print(f"  e2e delay        : {packet.e2e_delay_ms:8.2f} ms")
        print(
            "  true per-hop     : "
            + "  ".join(f"{d:6.2f}" for d in truth.node_delays())
        )
        print(
            "  Domo per-hop     : "
            + "  ".join(f"{d:6.2f}" for d in reconstructed)
        )
        print()

    # 4. Overall accuracy.
    errors = []
    for packet in trace.received:
        truth = trace.truth_of(packet.packet_id).node_delays()
        errors.extend(
            abs(a - b)
            for a, b in zip(estimate.delays_of(packet.packet_id), truth)
        )
    errors = np.asarray(errors)
    print(
        f"accuracy over {errors.size} per-hop delays: "
        f"mean {errors.mean():.2f} ms, "
        f"{100 * np.mean(errors < 4.0):.0f}% below 4 ms"
    )


if __name__ == "__main__":
    main()
