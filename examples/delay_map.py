#!/usr/bin/env python
"""Reproduce the paper's Fig. 1 motivation: time-varying delay maps.

The paper opens with two end-to-end delay maps of the CitySee deployment
taken at different times, showing that (a) delays vary widely across
nodes and (b) they change over time — which is why per-hop per-packet
(not statistical) tomography is needed. This example renders the same
kind of map from a simulated deployment as an ASCII heat map at two
observation windows.

    python examples/delay_map.py
"""

import numpy as np

from repro import NetworkConfig, Simulator

SHADES = " .:-=+*#%@"


def e2e_by_node(trace, t_start_ms: float, t_end_ms: float) -> dict[int, float]:
    """Mean end-to-end delay per source within an observation window."""
    sums: dict[int, list[float]] = {}
    for packet in trace.received:
        if t_start_ms <= packet.sink_arrival_ms < t_end_ms:
            sums.setdefault(packet.packet_id.source, []).append(
                packet.e2e_delay_ms
            )
    return {node: float(np.mean(v)) for node, v in sums.items()}


def render_map(simulator, delays: dict[int, float], cells: int = 24) -> str:
    """ASCII heat map of per-node delays laid out by physical position."""
    positions = simulator.topology.positions
    side = simulator.topology.side_m
    grid = [[" "] * cells for _ in range(cells)]
    scale = max(delays.values()) if delays else 1.0
    for node, delay in delays.items():
        x, y = positions[node]
        col = min(cells - 1, int(x / side * cells))
        row = min(cells - 1, int(y / side * cells))
        shade = SHADES[min(len(SHADES) - 1, int(delay / scale * (len(SHADES) - 1)))]
        grid[row][col] = shade
    sink_x, sink_y = positions[simulator.topology.sink]
    grid[min(cells - 1, int(sink_y / side * cells))][
        min(cells - 1, int(sink_x / side * cells))
    ] = "S"
    return "\n".join("".join(row) for row in grid)


def main() -> None:
    print("=== Fig. 1 motivation: end-to-end delays vary in space and time ===\n")
    config = NetworkConfig(
        num_nodes=100,
        duration_ms=240_000.0,
        packet_period_ms=6_000.0,
        seed=5,
    )
    simulator = Simulator(config)
    trace = simulator.run()

    half = config.duration_ms / 2
    early = e2e_by_node(trace, 0.0, half)
    late = e2e_by_node(trace, half, config.duration_ms)

    print(f"t1 = first {half / 1000:.0f}s (darker = longer e2e delay, S = sink):")
    print(render_map(simulator, early))
    print()
    print(f"t2 = last {half / 1000:.0f}s:")
    print(render_map(simulator, late))

    common = sorted(set(early) & set(late))
    changes = np.array(
        [abs(late[n] - early[n]) / max(early[n], 1e-9) for n in common]
    )
    print()
    print(
        f"{len(common)} nodes observed in both windows; "
        f"{100 * np.mean(changes > 0.25):.0f}% changed their mean e2e delay "
        "by more than 25% between the two windows."
    )
    print(
        "-> end-to-end statistics alone cannot localize problems;"
        " per-hop per-packet tomography (Domo) can."
    )


if __name__ == "__main__":
    main()
