#!/usr/bin/env python
"""Bounds mode and the baselines: the full method comparison in one run.

Runs the §VI comparison on a small network: Domo's estimated values and
LP bounds against MNT's bracketing bounds and MessageTracing's event
ordering, printing the same three metrics the paper's Fig. 6 plots.

    python examples/bounds_and_baselines.py
"""

import numpy as np

from repro import (
    DomoConfig,
    DomoReconstructor,
    MessageTracingReconstructor,
    MntReconstructor,
    NetworkConfig,
    simulate_network,
)
from repro.analysis.tables import format_stats_table
from repro.core.metrics import ErrorStats, element_displacements


def main() -> None:
    print("=== Domo vs MNT vs MessageTracing (paper Fig. 6, miniature) ===\n")
    trace = simulate_network(
        NetworkConfig(
            num_nodes=49,
            placement="grid",
            duration_ms=60_000.0,
            packet_period_ms=4_000.0,
            seed=3,
        )
    )
    print(f"{trace.num_received} packets received\n")

    domo = DomoReconstructor(DomoConfig())
    estimate = domo.estimate(trace)
    mnt = MntReconstructor().reconstruct(trace)

    # (a) estimated-value accuracy
    domo_err, mnt_err = [], []
    for packet in trace.received:
        truth = trace.truth_of(packet.packet_id).node_delays()
        domo_err += [
            abs(a - b)
            for a, b in zip(estimate.delays_of(packet.packet_id), truth)
        ]
        mnt_err += [
            abs(a - b)
            for a, b in zip(mnt.estimated_delays(packet.packet_id), truth)
        ]
    print(format_stats_table(
        [
            ("Domo", ErrorStats(np.asarray(domo_err))),
            ("MNT", ErrorStats(np.asarray(mnt_err))),
        ],
        value_label="(a) estimation error (ms)",
        thresholds=(4.0,),
    ))

    # (b) bound accuracy — Domo bounds for a sample of packets.
    sample = [p.packet_id for p in trace.received[:80]]
    bounds = domo.bounds(trace, packet_ids=sample)
    domo_widths = []
    for pid in {key.packet_id for key in bounds.bounds}:
        domo_widths += [hi - lo for lo, hi in bounds.delay_bounds(pid)]
    print()
    print(format_stats_table(
        [
            ("Domo", ErrorStats(np.asarray(domo_widths))),
            ("MNT", ErrorStats(np.asarray(mnt.delay_widths()))),
        ],
        value_label="(b) delay bound width (ms)",
    ))
    print(f"    Domo LP time per bound: {bounds.time_per_bound_ms:.1f} ms")

    # (c) event-order displacement.
    tracer = MessageTracingReconstructor()
    truth_order = tracer.true_transmission_order(trace)
    print()
    print(format_stats_table(
        [
            (
                "Domo",
                ErrorStats(element_displacements(
                    tracer.order_from_arrival_times(estimate.arrival_times),
                    truth_order,
                )),
            ),
            (
                "MessageTracing",
                ErrorStats(element_displacements(
                    tracer.global_transmission_order(trace), truth_order
                )),
            ),
        ],
        value_label="(c) event displacement (positions)",
    ))


if __name__ == "__main__":
    main()
