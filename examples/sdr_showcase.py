#!/usr/bin/env python
"""The semidefinite-relaxation path, end to end (paper Eq. (1)-(4)).

Builds a tiny window with a *genuinely unresolved* FIFO pair — two packets
crossing the same forwarder so close together that no sound ordering can
be proven — and shows the three treatments side by side:

1. linearized mode (default): the pair is skipped, order constraints and
   sum-of-delays still apply;
2. the faithful SDR lift: the product constraint survives as
   ``Tr(PU) >= 0`` with the PSD moment block;
3. SDR + Gaussian randomized rounding (the paper's QCQP reference).

    python examples/sdr_showcase.py
"""

import numpy as np

from repro.core.constraints import ConstraintConfig, build_constraints
from repro.core.estimator import estimate_arrival_times
from repro.core.records import ArrivalKey, TraceIndex
from repro.core.sdr import (
    SdrConfig,
    sdr_bounds,
    solve_window_sdr,
    solve_window_sdr_randomized,
)
from repro.sim.packet import PacketId
from repro.sim.trace import GroundTruthPacket, ReceivedPacket, TraceBundle


def build_window():
    """Two packets interleaving at forwarder 1, plus a context packet."""
    specs = [
        # (source, seqno, path, true arrival times, S(p))
        (2, 0, (2, 1, 4, 0), (0.0, 50.0, 70.0, 100.0), 50),
        (3, 0, (3, 1, 5, 0), (1.0, 52.0, 72.0, 101.0), 51),
        (2, 1, (2, 1, 4, 0), (200.0, 215.0, 240.0, 260.0), 15),
    ]
    received, truth = [], {}
    for source, seqno, path, times, s in specs:
        pid = PacketId(source, seqno)
        received.append(
            ReceivedPacket(
                packet_id=pid,
                path=path,
                generation_time_ms=times[0],
                sink_arrival_ms=times[-1],
                sum_of_delays_ms=s,
            )
        )
        truth[pid] = GroundTruthPacket(
            packet_id=pid, path=path, arrival_times_ms=times
        )
    return TraceBundle(received=received, ground_truth=truth)


def error_of(estimates, trace):
    errors = []
    for pid, truth in trace.ground_truth.items():
        for hop in range(1, len(truth.path) - 1):
            key = ArrivalKey(pid, hop)
            if key in estimates:
                errors.append(
                    abs(estimates[key] - truth.arrival_times_ms[hop])
                )
    return float(np.mean(errors))


def main() -> None:
    print("=== semidefinite relaxation showcase ===\n")
    trace = build_window()
    index = TraceIndex(list(trace.received))
    system = build_constraints(index, ConstraintConfig())
    print(
        f"{system.num_unknowns} unknowns, "
        f"{len(system.fifo_resolved)} resolved FIFO pairs, "
        f"{len(system.fifo_unresolved)} unresolved (kept for SDR)\n"
    )

    rng = np.random.default_rng(7)
    methods = [
        ("linearized QP", estimate_arrival_times(system)),
        ("SDR lift", solve_window_sdr(system, SdrConfig())),
        (
            "SDR + rounding",
            solve_window_sdr_randomized(
                system, SdrConfig(), num_samples=40, rng=rng
            ),
        ),
    ]
    for name, estimates in methods:
        print(f"{name:16s}: mean arrival error {error_of(estimates, trace):.2f} ms")

    print("\nSDP bounds over the lifted feasible set (vs intervals):")
    for key in system.variables:
        lo, hi = sdr_bounds(system, key, SdrConfig())
        ilo, ihi = system.intervals[key]
        truth = trace.ground_truth[key.packet_id].arrival_times_ms[key.hop]
        print(
            f"  {str(key):22s} interval [{ilo:6.1f},{ihi:6.1f}] "
            f"sdp [{lo:6.1f},{hi:6.1f}]  truth {truth:6.1f}"
        )


if __name__ == "__main__":
    main()
